package riscsim

import (
	"fmt"
	"math"
)

// handler executes one instruction.
type handler func(*Machine, *Instr) error

// execTable maps mnemonics to handlers. The assembler also consults it to
// reject unknown instructions at parse time.
var execTable = map[string]handler{}

// sizes maps the integer size suffixes to byte widths.
var sizes = map[byte]int{'b': 1, 'w': 2, 'l': 4}

func init() {
	// Data movement.
	execTable["li"] = li
	execTable["lfi"] = lfi
	execTable["la"] = la
	execTable["mv"] = mv
	for s, n := range sizes {
		execTable["ld"+string(s)] = loadInt(n)
		execTable["st"+string(s)] = storeInt(n)
	}
	execTable["ldf"] = ldf
	execTable["ldd"] = ldd
	execTable["stf"] = stf
	execTable["std"] = std

	// Integer arithmetic: three-register, destination first. Producers
	// write per-size extended results; consumers re-extend, so only the
	// low bits carry meaning between instructions.
	for s, n := range sizes {
		execTable["add"+string(s)] = binSigned(n, func(a, b int64) (int64, error) { return a + b, nil })
		execTable["sub"+string(s)] = binSigned(n, func(a, b int64) (int64, error) { return a - b, nil })
		execTable["mul"+string(s)] = binSigned(n, func(a, b int64) (int64, error) { return a * b, nil })
		execTable["div"+string(s)] = binSigned(n, func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("divide by zero")
			}
			return a / b, nil
		})
		execTable["rem"+string(s)] = binSigned(n, func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("modulus by zero")
			}
			return a % b, nil
		})
		execTable["divu"+string(s)] = binUnsigned(n, func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("divide by zero")
			}
			return a / b, nil
		})
		execTable["remu"+string(s)] = binUnsigned(n, func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("modulus by zero")
			}
			return a % b, nil
		})
		execTable["and"+string(s)] = binSigned(n, func(a, b int64) (int64, error) { return a & b, nil })
		execTable["or"+string(s)] = binSigned(n, func(a, b int64) (int64, error) { return a | b, nil })
		execTable["xor"+string(s)] = binSigned(n, func(a, b int64) (int64, error) { return a ^ b, nil })
		execTable["sll"+string(s)] = binSigned(n, func(a, b int64) (int64, error) { return shiftLeft(a, b), nil })
		execTable["sllu"+string(s)] = binUnsigned(n, func(a, b int64) (int64, error) { return shiftLeft(a, b), nil })
		execTable["sra"+string(s)] = binSigned(n, func(a, b int64) (int64, error) { return shiftLeft(a, -b), nil })
		execTable["srl"+string(s)] = binUnsigned(n, func(a, b int64) (int64, error) {
			if b >= 32 || b < 0 {
				return 0, nil
			}
			return int64(uint32(a) >> uint(b)), nil
		})
		execTable["neg"+string(s)] = unSigned(n, func(a int64) int64 { return -a })
		execTable["not"+string(s)] = unSigned(n, func(a int64) int64 { return ^a })
	}
	execTable["addi"] = addi

	// Floating arithmetic; f-forms round through float32.
	for _, s := range []byte{'f', 'd'} {
		f := s == 'f'
		execTable["add"+string(s)] = binFloat(f, func(a, b float64) (float64, error) { return a + b, nil })
		execTable["sub"+string(s)] = binFloat(f, func(a, b float64) (float64, error) { return a - b, nil })
		execTable["mul"+string(s)] = binFloat(f, func(a, b float64) (float64, error) { return a * b, nil })
		execTable["div"+string(s)] = binFloat(f, func(a, b float64) (float64, error) {
			if b == 0 {
				return 0, fmt.Errorf("floating divide by zero")
			}
			return a / b, nil
		})
	}
	execTable["negf"] = unFloat(func(a float64) float64 { return -a })
	execTable["negd"] = unFloat(func(a float64) float64 { return -a })

	// Conversions. Integer pairs read the source size signed (or, in the
	// u-forms, unsigned) and write per the destination size.
	intSuf := []byte{'b', 'w', 'l'}
	for _, from := range intSuf {
		for _, to := range intSuf {
			if from == to {
				continue
			}
			execTable["cvt"+string(from)+string(to)] = cvtInt(sizes[from], sizes[to], false)
			if sizes[from] < sizes[to] {
				execTable["cvtu"+string(from)+string(to)] = cvtInt(sizes[from], sizes[to], true)
			}
		}
		for _, to := range []byte{'f', 'd'} {
			execTable["cvt"+string(from)+string(to)] = cvtIntFloat(sizes[from], to == 'f', false)
			execTable["cvtu"+string(from)+string(to)] = cvtIntFloat(sizes[from], to == 'f', true)
		}
		execTable["cvtf"+string(from)] = cvtFloatInt(sizes[from])
		execTable["cvtd"+string(from)] = cvtFloatInt(sizes[from])
	}
	execTable["cvtfd"] = cvtFF(false)
	execTable["cvtdf"] = cvtFF(true)

	// Compare-and-branch. eq/ne need no unsigned variant: equality of the
	// low bits is equality under either extension.
	conds := map[string]func(a, b int64) bool{
		"eq": func(a, b int64) bool { return a == b },
		"ne": func(a, b int64) bool { return a != b },
		"lt": func(a, b int64) bool { return a < b },
		"le": func(a, b int64) bool { return a <= b },
		"gt": func(a, b int64) bool { return a > b },
		"ge": func(a, b int64) bool { return a >= b },
	}
	fconds := map[string]func(a, b float64) bool{
		"eq": func(a, b float64) bool { return a == b },
		"ne": func(a, b float64) bool { return a != b },
		"lt": func(a, b float64) bool { return a < b },
		"le": func(a, b float64) bool { return a <= b },
		"gt": func(a, b float64) bool { return a > b },
		"ge": func(a, b float64) bool { return a >= b },
	}
	for cond, cmp := range conds {
		for s, n := range sizes {
			execTable["b"+cond+string(s)] = branchInt(n, false, cmp)
			if cond != "eq" && cond != "ne" {
				execTable["b"+cond+"u"+string(s)] = branchInt(n, true, cmp)
			}
		}
	}
	for cond, cmp := range fconds {
		execTable["b"+cond+"f"] = branchFloat(cmp)
		execTable["b"+cond+"d"] = branchFloat(cmp)
	}
	execTable["jmp"] = jmp

	// Calls and the stack.
	execTable["push"] = push
	execTable["pushd"] = pushd
	execTable["call"] = call
	execTable["ret"] = ret
	execTable["enter"] = enter
}

// shiftLeft mirrors the reference interpreter's shift semantics (which in
// turn model the VAX ashl): negative counts shift right, with the count
// clamped at ±32.
func shiftLeft(v, cnt int64) int64 {
	if cnt >= 32 {
		return 0
	}
	if cnt <= -32 {
		return v >> 31
	}
	if cnt < 0 {
		return v >> uint(-cnt)
	}
	return v << uint(cnt)
}

func operands(in *Instr, n int) error {
	if len(in.Ops) != n {
		return fmt.Errorf("want %d operands, have %d", n, len(in.Ops))
	}
	return nil
}

// target resolves a code-transfer operand to an instruction index.
func target(m *Machine, o *Operand) (int, error) {
	if o.Mode != MLabel && o.Mode != MAbs {
		return 0, fmt.Errorf("bad code target %s", o)
	}
	m.modeCounts[MLabel]++
	e, ok := m.p.Labels[o.Sym]
	if !ok {
		return 0, fmt.Errorf("undefined code target %q", o.Sym)
	}
	return e, nil
}

func li(m *Machine, in *Instr) error {
	if err := operands(in, 2); err != nil {
		return err
	}
	rd, err := m.reg(&in.Ops[0])
	if err != nil {
		return err
	}
	o := &in.Ops[1]
	if o.Mode != MImm || o.IsF {
		return fmt.Errorf("li needs an integer immediate")
	}
	m.modeCounts[MImm]++
	m.R[rd] = uint64(o.Imm)
	return nil
}

func lfi(m *Machine, in *Instr) error {
	if err := operands(in, 2); err != nil {
		return err
	}
	rd, err := m.reg(&in.Ops[0])
	if err != nil {
		return err
	}
	o := &in.Ops[1]
	if o.Mode != MImm {
		return fmt.Errorf("lfi needs an immediate")
	}
	m.modeCounts[MImm]++
	v := float64(o.Imm)
	if o.IsF {
		v = o.FImm
	}
	m.setF(rd, v)
	return nil
}

func la(m *Machine, in *Instr) error {
	if err := operands(in, 2); err != nil {
		return err
	}
	rd, err := m.reg(&in.Ops[0])
	if err != nil {
		return err
	}
	a, err := m.memAddr(&in.Ops[1])
	if err != nil {
		return err
	}
	m.setInt(rd, 4, int64(int32(a)))
	return nil
}

func mv(m *Machine, in *Instr) error {
	if err := operands(in, 2); err != nil {
		return err
	}
	rd, err := m.reg(&in.Ops[0])
	if err != nil {
		return err
	}
	rs, err := m.reg(&in.Ops[1])
	if err != nil {
		return err
	}
	m.R[rd] = m.R[rs]
	return nil
}

func loadInt(size int) handler {
	return func(m *Machine, in *Instr) error {
		if err := operands(in, 2); err != nil {
			return err
		}
		rd, err := m.reg(&in.Ops[0])
		if err != nil {
			return err
		}
		a, err := m.memAddr(&in.Ops[1])
		if err != nil {
			return err
		}
		m.setInt(rd, size, extend(m.loadMem(a, size), size, false))
		return nil
	}
}

func storeInt(size int) handler {
	return func(m *Machine, in *Instr) error {
		if err := operands(in, 2); err != nil {
			return err
		}
		rs, err := m.reg(&in.Ops[0])
		if err != nil {
			return err
		}
		a, err := m.memAddr(&in.Ops[1])
		if err != nil {
			return err
		}
		m.storeMem(a, size, m.R[rs])
		return nil
	}
}

func ldf(m *Machine, in *Instr) error {
	if err := operands(in, 2); err != nil {
		return err
	}
	rd, err := m.reg(&in.Ops[0])
	if err != nil {
		return err
	}
	a, err := m.memAddr(&in.Ops[1])
	if err != nil {
		return err
	}
	m.setF(rd, float64(math.Float32frombits(uint32(m.loadMem(a, 4)))))
	return nil
}

func ldd(m *Machine, in *Instr) error {
	if err := operands(in, 2); err != nil {
		return err
	}
	rd, err := m.reg(&in.Ops[0])
	if err != nil {
		return err
	}
	a, err := m.memAddr(&in.Ops[1])
	if err != nil {
		return err
	}
	m.R[rd] = m.loadMem(a, 8)
	return nil
}

func stf(m *Machine, in *Instr) error {
	if err := operands(in, 2); err != nil {
		return err
	}
	rs, err := m.reg(&in.Ops[0])
	if err != nil {
		return err
	}
	a, err := m.memAddr(&in.Ops[1])
	if err != nil {
		return err
	}
	m.storeMem(a, 4, uint64(math.Float32bits(float32(m.fval(rs)))))
	return nil
}

func std(m *Machine, in *Instr) error {
	if err := operands(in, 2); err != nil {
		return err
	}
	rs, err := m.reg(&in.Ops[0])
	if err != nil {
		return err
	}
	a, err := m.memAddr(&in.Ops[1])
	if err != nil {
		return err
	}
	m.storeMem(a, 8, m.R[rs])
	return nil
}

func addi(m *Machine, in *Instr) error {
	if err := operands(in, 3); err != nil {
		return err
	}
	rd, err := m.reg(&in.Ops[0])
	if err != nil {
		return err
	}
	ra, err := m.reg(&in.Ops[1])
	if err != nil {
		return err
	}
	o := &in.Ops[2]
	if o.Mode != MImm || o.IsF {
		return fmt.Errorf("addi needs an integer immediate")
	}
	m.modeCounts[MImm]++
	m.setInt(rd, 4, int64(int32(uint32(m.R[ra])+uint32(o.Imm))))
	return nil
}

// threeRegs parses `op rD,rA,rB`.
func threeRegs(m *Machine, in *Instr) (rd, ra, rb int, err error) {
	if err = operands(in, 3); err != nil {
		return
	}
	if rd, err = m.reg(&in.Ops[0]); err != nil {
		return
	}
	if ra, err = m.reg(&in.Ops[1]); err != nil {
		return
	}
	rb, err = m.reg(&in.Ops[2])
	return
}

func binSigned(size int, f func(a, b int64) (int64, error)) handler {
	return func(m *Machine, in *Instr) error {
		rd, ra, rb, err := threeRegs(m, in)
		if err != nil {
			return err
		}
		v, err := f(m.sx(ra, size), m.sx(rb, size))
		if err != nil {
			return err
		}
		m.setInt(rd, size, v)
		return nil
	}
}

func binUnsigned(size int, f func(a, b int64) (int64, error)) handler {
	return func(m *Machine, in *Instr) error {
		rd, ra, rb, err := threeRegs(m, in)
		if err != nil {
			return err
		}
		v, err := f(m.zx(ra, size), m.zx(rb, size))
		if err != nil {
			return err
		}
		m.setUint(rd, size, v)
		return nil
	}
}

func binFloat(round bool, f func(a, b float64) (float64, error)) handler {
	return func(m *Machine, in *Instr) error {
		rd, ra, rb, err := threeRegs(m, in)
		if err != nil {
			return err
		}
		v, err := f(m.fval(ra), m.fval(rb))
		if err != nil {
			return err
		}
		if round {
			v = float64(float32(v))
		}
		m.setF(rd, v)
		return nil
	}
}

// twoRegs parses `op rD,rA`.
func twoRegs(m *Machine, in *Instr) (rd, ra int, err error) {
	if err = operands(in, 2); err != nil {
		return
	}
	if rd, err = m.reg(&in.Ops[0]); err != nil {
		return
	}
	ra, err = m.reg(&in.Ops[1])
	return
}

func unSigned(size int, f func(a int64) int64) handler {
	return func(m *Machine, in *Instr) error {
		rd, ra, err := twoRegs(m, in)
		if err != nil {
			return err
		}
		m.setInt(rd, size, f(m.sx(ra, size)))
		return nil
	}
}

func unFloat(f func(a float64) float64) handler {
	return func(m *Machine, in *Instr) error {
		rd, ra, err := twoRegs(m, in)
		if err != nil {
			return err
		}
		m.setF(rd, f(m.fval(ra)))
		return nil
	}
}

func cvtInt(from, to int, unsigned bool) handler {
	return func(m *Machine, in *Instr) error {
		rd, ra, err := twoRegs(m, in)
		if err != nil {
			return err
		}
		m.setInt(rd, to, extend(m.R[ra], from, unsigned))
		return nil
	}
}

func cvtIntFloat(from int, toF, unsigned bool) handler {
	return func(m *Machine, in *Instr) error {
		rd, ra, err := twoRegs(m, in)
		if err != nil {
			return err
		}
		v := float64(extend(m.R[ra], from, unsigned))
		if toF {
			v = float64(float32(v))
		}
		m.setF(rd, v)
		return nil
	}
}

func cvtFloatInt(to int) handler {
	return func(m *Machine, in *Instr) error {
		rd, ra, err := twoRegs(m, in)
		if err != nil {
			return err
		}
		m.setInt(rd, to, int64(m.fval(ra))) // truncates toward zero
		return nil
	}
}

func cvtFF(round bool) handler {
	return func(m *Machine, in *Instr) error {
		rd, ra, err := twoRegs(m, in)
		if err != nil {
			return err
		}
		v := m.fval(ra)
		if round {
			v = float64(float32(v))
		}
		m.setF(rd, v)
		return nil
	}
}

func branchInt(size int, unsigned bool, cmp func(a, b int64) bool) handler {
	return func(m *Machine, in *Instr) error {
		if err := operands(in, 3); err != nil {
			return err
		}
		ra, err := m.reg(&in.Ops[0])
		if err != nil {
			return err
		}
		rb, err := m.reg(&in.Ops[1])
		if err != nil {
			return err
		}
		t, err := target(m, &in.Ops[2])
		if err != nil {
			return err
		}
		var a, b int64
		if unsigned {
			a, b = m.zx(ra, size), m.zx(rb, size)
		} else {
			a, b = m.sx(ra, size), m.sx(rb, size)
		}
		if cmp(a, b) {
			m.pcNext = t
		}
		return nil
	}
}

func branchFloat(cmp func(a, b float64) bool) handler {
	return func(m *Machine, in *Instr) error {
		if err := operands(in, 3); err != nil {
			return err
		}
		ra, err := m.reg(&in.Ops[0])
		if err != nil {
			return err
		}
		rb, err := m.reg(&in.Ops[1])
		if err != nil {
			return err
		}
		t, err := target(m, &in.Ops[2])
		if err != nil {
			return err
		}
		if cmp(m.fval(ra), m.fval(rb)) {
			m.pcNext = t
		}
		return nil
	}
}

func jmp(m *Machine, in *Instr) error {
	if err := operands(in, 1); err != nil {
		return err
	}
	t, err := target(m, &in.Ops[0])
	if err != nil {
		return err
	}
	m.pcNext = t
	return nil
}

func push(m *Machine, in *Instr) error {
	if err := operands(in, 1); err != nil {
		return err
	}
	o := &in.Ops[0]
	if o.Mode == MImm {
		if o.IsF {
			return fmt.Errorf("push needs an integer operand")
		}
		m.modeCounts[MImm]++
		m.push32(uint32(o.Imm))
		return nil
	}
	rs, err := m.reg(o)
	if err != nil {
		return err
	}
	m.push32(uint32(m.R[rs]))
	return nil
}

// pushd pushes an 8-byte floating value as two argument words, low word
// at the lower address, matching the reference interpreter's argument
// marshalling for doubles.
func pushd(m *Machine, in *Instr) error {
	if err := operands(in, 1); err != nil {
		return err
	}
	o := &in.Ops[0]
	var bits uint64
	if o.Mode == MImm {
		m.modeCounts[MImm]++
		v := float64(o.Imm)
		if o.IsF {
			v = o.FImm
		}
		bits = math.Float64bits(v)
	} else {
		rs, err := m.reg(o)
		if err != nil {
			return err
		}
		bits = m.R[rs]
	}
	m.R[regSP] = uint64(m.addr(regSP) - 8)
	m.storeMem(m.addr(regSP), 8, bits)
	return nil
}

// call $n,_sym transfers to a function, building the same stack frame
// vaxsim's calls does: argument count, saved ap, fp and return pc, with
// r6..r11 preserved across the call.
func call(m *Machine, in *Instr) error {
	if err := operands(in, 2); err != nil {
		return err
	}
	if in.Ops[0].Mode != MImm {
		return fmt.Errorf("call needs an immediate argument count")
	}
	m.modeCounts[MImm]++
	n := uint32(in.Ops[0].Imm)
	sym := in.Ops[1].Sym
	entry, err := target(m, &in.Ops[1])
	if err != nil {
		return err
	}
	if m.fnSteps != nil {
		m.fnStack = append(m.fnStack, sym)
	}
	m.push32(n)
	apAddr := m.addr(regSP)
	m.push32(uint32(m.R[regAP]))
	m.push32(uint32(m.R[regFP]))
	m.push32(uint32(int32(m.pc + 1)))
	m.R[regFP] = m.R[regSP]
	m.R[regAP] = uint64(apAddr)
	m.frames = append(m.frames, m.saveRegs())
	m.pcNext = entry
	return nil
}

func ret(m *Machine, in *Instr) error {
	if err := operands(in, 0); err != nil {
		return err
	}
	if len(m.frames) == 0 {
		return fmt.Errorf("ret with no active frame")
	}
	if m.fnSteps != nil && len(m.fnStack) > 0 {
		m.fnStack = m.fnStack[:len(m.fnStack)-1]
	}
	m.restoreRegs(m.frames[len(m.frames)-1])
	m.frames = m.frames[:len(m.frames)-1]
	m.R[regSP] = m.R[regFP]
	retPC := int(int32(m.pop32()))
	m.R[regFP] = uint64(m.pop32())
	m.R[regAP] = uint64(m.pop32())
	n := m.pop32()
	m.R[regSP] = uint64(m.addr(regSP) + 4*n)
	m.pcNext = retPC
	return nil
}

// enter $n reserves n bytes of frame space for locals and spills.
func enter(m *Machine, in *Instr) error {
	if err := operands(in, 1); err != nil {
		return err
	}
	o := &in.Ops[0]
	if o.Mode != MImm || o.IsF {
		return fmt.Errorf("enter needs an integer immediate")
	}
	m.modeCounts[MImm]++
	m.R[regSP] = uint64(m.addr(regSP) - uint32(o.Imm))
	return nil
}
