package riscsim

import (
	"errors"
	"strings"
	"testing"
)

// run assembles src and calls fn, failing the test on any error.
func run(t *testing.T, src, fn string, args ...int64) (int64, *Machine) {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(p)
	r, err := m.Call(fn, args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return r, m
}

func TestCallBasic(t *testing.T) {
	r, m := run(t, `
.globl _f
_f:
	li	r0,$40
	li	r1,$2
	addl	r0,r0,r1
	ret
`, "_f")
	if r != 42 {
		t.Errorf("f() = %d, want 42", r)
	}
	if m.Steps != 4 {
		t.Errorf("Steps = %d, want 4", m.Steps)
	}
	if m.Counts["li"] != 2 || m.Counts["addl"] != 1 || m.Counts["ret"] != 1 {
		t.Errorf("counts = %v", m.Counts)
	}
}

// TestArgsAndCall exercises the vaxsim-compatible frame protocol: the
// caller pushes arguments right to left, call records the count, and the
// callee reads them at 4(ap), 8(ap), ...
func TestArgsAndCall(t *testing.T) {
	src := `
.globl _sub2
_sub2:
	ldl	r0,4(ap)
	ldl	r1,8(ap)
	subl	r0,r0,r1
	ret
.globl _f
_f:
	ldl	r1,8(ap)
	push	r1
	ldl	r1,4(ap)
	push	r1
	call	$2,_sub2
	ret
`
	r, _ := run(t, src, "_f", 50, 8)
	if r != 42 {
		t.Errorf("f(50, 8) = %d, want 42", r)
	}
	// Direct call of the leaf too: Call marshals args the same way.
	r, _ = run(t, src, "_sub2", 7, 3)
	if r != 4 {
		t.Errorf("sub2(7, 3) = %d, want 4", r)
	}
}

// TestSizeSemantics: a b-suffixed producer writes its result extended from
// the low byte, so only the low size bits carry meaning between
// instructions.
func TestSizeSemantics(t *testing.T) {
	r, _ := run(t, `
_f:
	li	r0,$200
	li	r1,$200
	addb	r0,r0,r1
	ret
`, "_f")
	// 200+200 = 400 = 0x190; the low byte 0x90 reads back as -112.
	if r != -112 {
		t.Errorf("addb 200,200 = %d, want -112", r)
	}
}

func TestUnsignedDivision(t *testing.T) {
	r, _ := run(t, `
_f:
	li	r0,$-2
	li	r1,$2
	divul	r0,r0,r1
	ret
`, "_f")
	// -2 reads as 0xFFFFFFFE unsigned; half of that is 0x7FFFFFFF.
	if r != 0x7FFFFFFF {
		t.Errorf("divul -2,2 = %d, want %d", r, int64(0x7FFFFFFF))
	}
}

// TestFloatRounding: f-suffixed operations round through float32, d forms
// do not — 2^24 + 1 is the first integer float32 cannot represent.
func TestFloatRounding(t *testing.T) {
	r, _ := run(t, `
_f:
	lfi	r0,$16777216
	lfi	r1,$1
	addf	r2,r0,r1
	cvtfl	r0,r2
	ret
`, "_f")
	if r != 16777216 {
		t.Errorf("float32 add = %d, want 16777216", r)
	}
	r, _ = run(t, `
_d:
	lfi	r0,$16777216
	lfi	r1,$1
	addd	r2,r0,r1
	cvtdl	r0,r2
	ret
`, "_d")
	if r != 16777217 {
		t.Errorf("float64 add = %d, want 16777217", r)
	}
}

// TestGlobalsAndMemory covers the data directives, loads and stores, la,
// register-displaced addressing and ReadGlobal — the load/store half of
// the machine.
func TestGlobalsAndMemory(t *testing.T) {
	p, err := Assemble(`
.data
.align 2
_g:
	.long 7
.comm _h,4
.text
.globl _f
_f:
	la	r1,_g
	ldl	r0,(r1)
	addl	r0,r0,r0
	stl	r0,_h
	addi	r1,r1,$4
	ret
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	r, err := m.Call("_f")
	if err != nil {
		t.Fatal(err)
	}
	if r != 14 {
		t.Errorf("f() = %d, want 14", r)
	}
	h, err := m.ReadGlobal("_h", 4)
	if err != nil {
		t.Fatal(err)
	}
	if h != 14 {
		t.Errorf("_h = %d, want 14", h)
	}
	if _, err := m.ReadGlobal("_nope", 4); err == nil {
		t.Error("ReadGlobal of an unknown symbol succeeded")
	}
}

// TestBranchLoop: compare-and-branch plus jmp, the machine's whole
// control-flow vocabulary, summing 1..5.
func TestBranchLoop(t *testing.T) {
	r, _ := run(t, `
_f:
	li	r0,$0
	li	r1,$1
	li	r2,$5
L1:
	bgtl	r1,r2,L2
	addl	r0,r0,r1
	addi	r1,r1,$1
	jmp	L1
L2:
	ret
`, "_f")
	if r != 15 {
		t.Errorf("sum 1..5 = %d, want 15", r)
	}
}

// TestFrameSlots: enter reserves locals below fp; stores and loads through
// negative fp displacements round-trip (the spill path of the generator).
func TestFrameSlots(t *testing.T) {
	r, _ := run(t, `
_f:
	enter	$8
	li	r1,$9
	stl	r1,-4(fp)
	li	r1,$0
	ldl	r0,-4(fp)
	ret
`, "_f")
	if r != 9 {
		t.Errorf("f() = %d, want 9", r)
	}
}

func TestAssembleRejectsUnknownInstruction(t *testing.T) {
	_, err := Assemble("_f:\n\tfnord\tr0,r1\n\tret\n")
	if err == nil {
		t.Fatal("unknown mnemonic assembled")
	}
	if !strings.Contains(err.Error(), "fnord") {
		t.Errorf("error %q does not name the mnemonic", err)
	}
}

func TestExecErrors(t *testing.T) {
	p, err := Assemble(`
_f:
	li	r0,$1
	li	r1,$0
	divl	r0,r0,r1
	ret
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	_, err = m.Call("_f")
	if err == nil {
		t.Fatal("divide by zero succeeded")
	}
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("error is %T, want *ExecError", err)
	}
	if !strings.Contains(ee.Instr, "divl") {
		t.Errorf("ExecError does not carry the faulting instruction: %+v", ee)
	}

	if _, err := m.Call("_missing"); err == nil {
		t.Error("call of a missing function succeeded")
	}
}

// TestStepLimit: a tight MaxSteps turns an infinite loop into an error
// instead of a hang — the property the differential harness leans on.
func TestStepLimit(t *testing.T) {
	p, err := Assemble("_f:\n\tjmp\t_f\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(p)
	m.MaxSteps = 100
	if _, err := m.Call("_f"); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("infinite loop: err = %v, want step limit", err)
	}
}
