package riscsim

import (
	"fmt"
	"math"

	"ggcg/internal/obs"
)

// Machine is the simulated RISC-subset processor: sixteen 64-bit
// registers, a byte-addressable little-endian memory, no condition codes.
// Addresses are 32-bit (the low word of a register), and the stack layout
// and calling convention are byte-for-byte those of vaxsim so the
// differential harness drives both machines identically.
type Machine struct {
	p   *Program
	R   [16]uint64
	Mem []byte

	pc     int
	pcNext int
	frames []frame

	// Steps counts executed instructions; Counts breaks them down by
	// mnemonic for the dynamic code-quality comparisons.
	Steps    int64
	Counts   map[string]int64
	MaxSteps int64

	// modeCounts tallies operand evaluations by addressing mode.
	modeCounts [5]int64

	// fnSteps attributes executed instructions to the function (call
	// stack top) executing them; nil until EnableFuncProfile.
	fnSteps map[string]int64
	fnStack []string
}

type frame struct {
	saved [6]uint64 // r6..r11, the callee-saved register file
}

// Register numbers of the dedicated registers.
const (
	regAP = 12
	regFP = 13
	regSP = 14
	regPC = 15
)

// retSentinel is the return "pc" of the outermost frame.
const retSentinel = -2

// ExecError describes a runtime fault of the simulated machine, mirroring
// vaxsim.ExecError: the failing instruction by program counter and source
// line, its disassembly, and the underlying cause.
type ExecError struct {
	PC    int
	Line  int
	Instr string
	Err   error
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("riscsim: pc %d, line %d (%s): %v", e.PC, e.Line, e.Instr, e.Err)
}

func (e *ExecError) Unwrap() error { return e.Err }

// DefaultMemory is the simulated memory size.
const DefaultMemory = 1 << 20

// New returns a machine for the program with default memory.
func New(p *Program) *Machine {
	m := &Machine{
		p:        p,
		Mem:      make([]byte, DefaultMemory),
		Counts:   make(map[string]int64),
		MaxSteps: 50_000_000,
	}
	m.Reset()
	return m
}

// Reset clears registers and memory and reapplies data initialization.
func (m *Machine) Reset() {
	m.R = [16]uint64{}
	for i := range m.Mem {
		m.Mem[i] = 0
	}
	for _, di := range m.p.init {
		copy(m.Mem[di.addr:], di.bytes)
	}
	m.R[regSP] = uint64(len(m.Mem) - 64)
	m.frames = m.frames[:0]
}

// Global returns the address of a data symbol.
func (m *Machine) Global(name string) (uint32, bool) {
	a, ok := m.p.Globals[name]
	return a, ok
}

// Call resets the machine, pushes the given longword arguments and
// executes the named function until it returns, yielding r0 as a signed
// 32-bit result — the same contract as vaxsim.Machine.Call.
func (m *Machine) Call(name string, args ...int64) (int64, error) {
	m.Reset()
	return m.CallPreservingState(name, args...)
}

// CallPreservingState is Call without the Reset, so globals keep their
// values across calls.
func (m *Machine) CallPreservingState(name string, args ...int64) (int64, error) {
	entry, ok := m.p.Labels[name]
	if !ok {
		return 0, fmt.Errorf("riscsim: no function %q", name)
	}
	if m.fnSteps != nil {
		m.fnStack = append(m.fnStack[:0], name)
	}
	for i := len(args) - 1; i >= 0; i-- {
		m.push32(uint32(args[i]))
	}
	m.push32(uint32(len(args)))
	apAddr := m.addr(regSP)
	m.push32(uint32(m.R[regAP]))
	m.push32(uint32(m.R[regFP]))
	m.push32(^uint32(1)) // retSentinel (-2) as an unsigned word
	m.R[regFP] = m.R[regSP]
	m.R[regAP] = uint64(apAddr)
	m.frames = append(m.frames, m.saveRegs())
	m.pc = entry

	for {
		if m.pc == retSentinel {
			return int64(int32(uint32(m.R[0]))), nil
		}
		if m.pc < 0 || m.pc >= len(m.p.Instrs) {
			return 0, fmt.Errorf("riscsim: pc %d out of range", m.pc)
		}
		if m.Steps++; m.Steps > m.MaxSteps {
			return 0, fmt.Errorf("riscsim: step limit %d exceeded", m.MaxSteps)
		}
		in := &m.p.Instrs[m.pc]
		m.Counts[in.Mn]++
		if m.fnSteps != nil && len(m.fnStack) > 0 {
			m.fnSteps[m.fnStack[len(m.fnStack)-1]]++
		}
		m.pcNext = m.pc + 1
		h := execTable[in.Mn]
		if h == nil {
			return 0, &ExecError{PC: m.pc, Line: in.Line, Instr: in.String(),
				Err: fmt.Errorf("unknown instruction %q", in.Mn)}
		}
		if err := m.step(in, h); err != nil {
			return 0, &ExecError{PC: m.pc, Line: in.Line, Instr: in.String(), Err: err}
		}
		m.pc = m.pcNext
	}
}

// step runs one handler, converting a panic into an ordinary error so the
// fault is reported with its instruction context.
func (m *Machine) step(in *Instr, h handler) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return h(m, in)
}

func (m *Machine) saveRegs() frame {
	var f frame
	copy(f.saved[:], m.R[6:12])
	return f
}

func (m *Machine) restoreRegs(f frame) {
	copy(m.R[6:12], f.saved[:])
}

// addr reads a register as a 32-bit address.
func (m *Machine) addr(r int) uint32 { return uint32(m.R[r]) }

func (m *Machine) push32(v uint32) {
	m.R[regSP] = uint64(m.addr(regSP) - 4)
	m.storeMem(m.addr(regSP), 4, uint64(v))
}

func (m *Machine) pop32() uint32 {
	v := uint32(m.loadMem(m.addr(regSP), 4))
	m.R[regSP] = uint64(m.addr(regSP) + 4)
	return v
}

func (m *Machine) loadMem(addr uint32, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.Mem[(addr+uint32(i))%uint32(len(m.Mem))]) << (8 * i)
	}
	return v
}

func (m *Machine) storeMem(addr uint32, size int, v uint64) {
	for i := 0; i < size; i++ {
		m.Mem[(addr+uint32(i))%uint32(len(m.Mem))] = byte(v >> (8 * i))
	}
}

// memAddr resolves a memory operand (MDisp or MAbs) to an address.
func (m *Machine) memAddr(o *Operand) (uint32, error) {
	m.modeCounts[o.Mode]++
	switch o.Mode {
	case MDisp:
		return m.addr(o.Reg) + uint32(o.Disp), nil
	case MAbs:
		a, ok := m.p.Globals[o.Sym]
		if !ok {
			return 0, fmt.Errorf("undefined symbol %q", o.Sym)
		}
		return a + uint32(o.Disp), nil
	}
	return 0, fmt.Errorf("operand %s is not a memory reference", o)
}

// reg checks that the operand is a register and returns its number.
func (m *Machine) reg(o *Operand) (int, error) {
	if o.Mode != MReg {
		return 0, fmt.Errorf("operand %s is not a register", o)
	}
	m.modeCounts[MReg]++
	return o.Reg, nil
}

// sx reads a register's low size bytes sign-extended; zx reads them
// zero-extended. All integer instructions read through these two, which
// is what makes the upper register bits unobservable.
func (m *Machine) sx(r, size int) int64 { return extend(m.R[r], size, false) }

func (m *Machine) zx(r, size int) int64 { return extend(m.R[r], size, true) }

func extend(v uint64, size int, unsigned bool) int64 {
	switch size {
	case 1:
		if unsigned {
			return int64(uint8(v))
		}
		return int64(int8(v))
	case 2:
		if unsigned {
			return int64(uint16(v))
		}
		return int64(int16(v))
	default:
		if unsigned {
			return int64(uint32(v))
		}
		return int64(int32(v))
	}
}

// setInt writes an integer result sign-extended per size; setUint writes
// it zero-extended (the u-form convention). Consumers re-extend, so the
// two conventions are interchangeable in generated code.
func (m *Machine) setInt(r, size int, v int64) { m.R[r] = uint64(extend(uint64(v), size, false)) }

func (m *Machine) setUint(r, size int, v int64) { m.R[r] = uint64(extend(uint64(v), size, true)) }

// Floating values occupy a full register as float64 bits.
func (m *Machine) fval(r int) float64 { return math.Float64frombits(m.R[r]) }

func (m *Machine) setF(r int, v float64) { m.R[r] = math.Float64bits(v) }

// EnableFuncProfile turns on per-function step attribution.
func (m *Machine) EnableFuncProfile() {
	if m.fnSteps == nil {
		m.fnSteps = make(map[string]int64)
	}
}

// modeNames labels the addressing modes in profile output.
var modeNames = [5]string{"rN", "d(rN)", "_abs", "$imm", "label"}

// Profile snapshots the machine's dynamic execution profile.
func (m *Machine) Profile() obs.SimProfile {
	p := obs.SimProfile{Steps: m.Steps}
	if len(m.Counts) > 0 {
		p.Opcodes = make(map[string]int64, len(m.Counts))
		for mn, n := range m.Counts {
			p.Opcodes[mn] = n
		}
	}
	p.Modes = make(map[string]int64)
	for i, n := range m.modeCounts {
		if n > 0 {
			p.Modes[modeNames[i]] = n
		}
	}
	if len(m.fnSteps) > 0 {
		p.FuncSteps = make(map[string]int64, len(m.fnSteps))
		for fn, n := range m.fnSteps {
			p.FuncSteps[fn] = n
		}
	}
	return p
}

// ReadGlobal reads size bytes of the named global as a signed integer.
func (m *Machine) ReadGlobal(name string, size int) (int64, error) {
	a, ok := m.Global(name)
	if !ok {
		return 0, fmt.Errorf("riscsim: no global %q", name)
	}
	return extend(m.loadMem(a, size), size, false), nil
}

// ReadGlobalFloat reads the named global as a 4- or 8-byte floating value.
func (m *Machine) ReadGlobalFloat(name string, size int) (float64, error) {
	a, ok := m.Global(name)
	if !ok {
		return 0, fmt.Errorf("riscsim: no global %q", name)
	}
	if size == 4 {
		return float64(math.Float32frombits(uint32(m.loadMem(a, 4)))), nil
	}
	return math.Float64frombits(m.loadMem(a, 8)), nil
}

// WriteGlobal stores a signed integer into the named global.
func (m *Machine) WriteGlobal(name string, size int, v int64) error {
	a, ok := m.Global(name)
	if !ok {
		return fmt.Errorf("riscsim: no global %q", name)
	}
	m.storeMem(a, size, uint64(v))
	return nil
}
