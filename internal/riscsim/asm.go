// Package riscsim is an assembler and simulator for the load/store
// RISC-subset target (internal/risc), the second machine that proves the
// target.Machine seam. It mirrors vaxsim's structure — the same directive
// set, label syntax, frame protocol and memory layout — so generated code
// for either target executes against the same differential oracles, but
// the instruction set is a deliberately minimal three-register design:
// sixteen 64-bit registers, loads and stores as the only memory accesses,
// no condition codes (compare-and-branch instead), and immediates only in
// li/lfi/addi/push.
//
// Register semantics: an integer instruction of size suffix b/w/l reads
// the low 1/2/4 bytes of its source registers, extending per its own
// signedness, and writes its result sign- (or, for the u-forms, zero-)
// extended to 64 bits. Upper register bits are therefore never observable
// across instructions, which is what lets the generator match the IR
// interpreter's value semantics exactly (see internal/risc). Floating
// values occupy a full register as float64 bits; f-suffixed operations
// round results through float32 exactly as the IR interpreter does.
package riscsim

import (
	"fmt"
	"strconv"
	"strings"

	"ggcg/internal/obs"
)

// AddrMode is an operand addressing mode. The machine is load/store, so
// the set is small: registers, displaced memory, absolute memory,
// immediates and code labels.
type AddrMode uint8

// Addressing modes.
const (
	MReg   AddrMode = iota // rN
	MDisp                  // d(rN) or (rN)
	MAbs                   // _name or _name+d
	MImm                   // $v
	MLabel                 // L7 or _name as a code target
)

// Operand is one parsed instruction operand.
type Operand struct {
	Mode AddrMode
	Reg  int
	Disp int32
	Sym  string
	Imm  int64
	FImm float64
	IsF  bool // immediate is floating
}

func (o Operand) String() string {
	switch o.Mode {
	case MReg:
		return regName(o.Reg)
	case MDisp:
		return fmt.Sprintf("%d(%s)", o.Disp, regName(o.Reg))
	case MAbs:
		if o.Disp != 0 {
			return fmt.Sprintf("%s+%d", o.Sym, o.Disp)
		}
		return o.Sym
	case MImm:
		if o.IsF {
			return fmt.Sprintf("$%g", o.FImm)
		}
		return fmt.Sprintf("$%d", o.Imm)
	case MLabel:
		return o.Sym
	}
	return "?"
}

func regName(r int) string {
	switch r {
	case 12:
		return "ap"
	case 13:
		return "fp"
	case 14:
		return "sp"
	case 15:
		return "pc"
	}
	return fmt.Sprintf("r%d", r)
}

// Instr is one assembled instruction.
type Instr struct {
	Mn   string
	Ops  []Operand
	Line int
}

func (i Instr) String() string {
	parts := make([]string, len(i.Ops))
	for j, o := range i.Ops {
		parts[j] = o.String()
	}
	return i.Mn + "\t" + strings.Join(parts, ",")
}

// Program is an assembled unit ready to execute.
type Program struct {
	Instrs  []Instr
	Labels  map[string]int    // code label -> instruction index
	Globals map[string]uint32 // data symbol -> address
	DataEnd uint32            // first address beyond static data
	init    []dataInit
}

type dataInit struct {
	addr  uint32
	bytes []byte
}

// dataBase is where static data is placed in simulated memory (the same
// layout vaxsim uses, so the differential harness reads globals of either
// target identically).
const dataBase = 0x1000

// AssembleObs is Assemble with instrumentation: the pass reports a span
// and instruction/symbol counters to the observer (nil disables).
func AssembleObs(src string, o *obs.Observer) (*Program, error) {
	sp := o.Start("assemble")
	defer sp.End()
	p, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	o.Count("asm.instructions", int64(len(p.Instrs)))
	o.Count("asm.labels", int64(len(p.Labels)))
	o.Count("asm.globals", int64(len(p.Globals)))
	return p, nil
}

// Assemble parses assembly text into an executable program.
func Assemble(src string) (*Program, error) {
	p := &Program{
		Labels:  make(map[string]int),
		Globals: make(map[string]uint32),
	}
	cursor := uint32(dataBase)
	inData := false
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for line != "" {
			// Peel off label definitions.
			colon := strings.IndexByte(line, ':')
			if colon < 0 || !isLabelDef(line[:colon]) {
				break
			}
			name := line[:colon]
			if inData {
				p.Globals[name] = cursor
			} else {
				p.Labels[name] = len(p.Instrs)
			}
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			var err error
			cursor, inData, err = p.directive(line, cursor, inData)
			if err != nil {
				return nil, fmt.Errorf("riscsim: line %d: %v", lineNo+1, err)
			}
			continue
		}
		instr, err := parseInstr(line, lineNo+1)
		if err != nil {
			return nil, fmt.Errorf("riscsim: line %d: %v", lineNo+1, err)
		}
		p.Instrs = append(p.Instrs, instr)
	}
	p.DataEnd = cursor
	// Verify that every code target resolves.
	for _, in := range p.Instrs {
		for _, o := range in.Ops {
			if o.Mode == MLabel {
				if _, ok := p.Labels[o.Sym]; !ok {
					if _, isData := p.Globals[o.Sym]; !isData {
						return nil, fmt.Errorf("riscsim: line %d: undefined target %q", in.Line, o.Sym)
					}
				}
			}
		}
	}
	return p, nil
}

func isLabelDef(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c == '.' || c == '$' ||
			c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

func (p *Program) directive(line string, cursor uint32, inData bool) (uint32, bool, error) {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".text":
		return cursor, false, nil
	case ".data":
		return cursor, true, nil
	case ".globl", ".word":
		// .globl is advisory; .word is accepted for directive compatibility
		// with the VAX emitter (the RISC emitter writes no entry mask).
		return cursor, inData, nil
	case ".align":
		if len(fields) < 2 {
			return cursor, inData, fmt.Errorf(".align needs an argument")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 || n > 12 {
			return cursor, inData, fmt.Errorf("bad .align %q", fields[1])
		}
		size := uint32(1) << n
		if r := cursor % size; r != 0 {
			cursor += size - r
		}
		return cursor, inData, nil
	case ".comm":
		arg := strings.Join(fields[1:], "")
		parts := strings.Split(arg, ",")
		if len(parts) != 2 {
			return cursor, inData, fmt.Errorf("bad .comm %q", line)
		}
		size, err := strconv.Atoi(parts[1])
		if err != nil || size <= 0 {
			return cursor, inData, fmt.Errorf("bad .comm size %q", parts[1])
		}
		if r := cursor % 4; r != 0 {
			cursor += 4 - r
		}
		p.Globals[parts[0]] = cursor
		return cursor + uint32(size), inData, nil
	case ".space":
		if len(fields) < 2 {
			return cursor, inData, fmt.Errorf(".space needs a size")
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil || size < 0 {
			return cursor, inData, fmt.Errorf("bad .space %q", fields[1])
		}
		return cursor + uint32(size), inData, nil
	case ".long", ".byte":
		elem := 4
		if fields[0] == ".byte" {
			elem = 1
		}
		args := strings.Split(strings.Join(fields[1:], ""), ",")
		for _, a := range args {
			v, err := strconv.ParseInt(a, 0, 64)
			if err != nil {
				return cursor, inData, fmt.Errorf("bad %s value %q", fields[0], a)
			}
			b := make([]byte, elem)
			for i := 0; i < elem; i++ {
				b[i] = byte(v >> (8 * i))
			}
			p.init = append(p.init, dataInit{addr: cursor, bytes: b})
			cursor += uint32(elem)
		}
		return cursor, inData, nil
	}
	return cursor, inData, fmt.Errorf("unknown directive %q", fields[0])
}

func parseInstr(line string, lineNo int) (Instr, error) {
	mn := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	in := Instr{Mn: mn, Line: lineNo}
	if _, ok := execTable[mn]; !ok {
		return in, fmt.Errorf("unknown instruction %q", mn)
	}
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			op, err := parseOperand(strings.TrimSpace(part))
			if err != nil {
				return in, err
			}
			in.Ops = append(in.Ops, op)
		}
	}
	return in, nil
}

func parseOperand(s string) (Operand, error) {
	var o Operand
	if s == "" {
		return o, fmt.Errorf("empty operand")
	}
	switch {
	case strings.HasPrefix(s, "$"):
		body := s[1:]
		if v, err := strconv.ParseInt(body, 0, 64); err == nil {
			o.Mode, o.Imm = MImm, v
			return o, nil
		}
		if f, err := strconv.ParseFloat(body, 64); err == nil {
			o.Mode, o.FImm, o.IsF = MImm, f, true
			return o, nil
		}
		return o, fmt.Errorf("bad immediate %q", s)
	case strings.HasSuffix(s, ")"):
		lp := strings.IndexByte(s, '(')
		if lp < 0 {
			return o, fmt.Errorf("bad operand %q", s)
		}
		r, ok := parseRegName(s[lp+1 : len(s)-1])
		if !ok {
			return o, fmt.Errorf("bad base register in %q", s)
		}
		o.Mode, o.Reg = MDisp, r
		if lp > 0 {
			d, err := strconv.ParseInt(s[:lp], 0, 32)
			if err != nil {
				return o, fmt.Errorf("bad displacement in %q", s)
			}
			o.Disp = int32(d)
		}
		return o, nil
	}
	if r, ok := parseRegName(s); ok {
		o.Mode, o.Reg = MReg, r
		return o, nil
	}
	if strings.HasPrefix(s, "_") || strings.HasPrefix(s, "L") && isLabelDef(s) {
		// Split _name+disp.
		sym, disp := s, int64(0)
		if i := strings.IndexByte(s, '+'); i > 0 {
			var err error
			disp, err = strconv.ParseInt(s[i+1:], 0, 32)
			if err != nil {
				return o, fmt.Errorf("bad symbol offset %q", s)
			}
			sym = s[:i]
		}
		if !isLabelDef(sym) {
			return o, fmt.Errorf("bad symbol %q", s)
		}
		if strings.HasPrefix(sym, "L") && disp == 0 {
			o.Mode, o.Sym = MLabel, sym
			return o, nil
		}
		o.Mode, o.Sym, o.Disp = MAbs, sym, int32(disp)
		return o, nil
	}
	return o, fmt.Errorf("bad operand %q", s)
}

func parseRegName(s string) (int, bool) {
	switch s {
	case "ap":
		return 12, true
	case "fp":
		return 13, true
	case "sp":
		return 14, true
	case "pc":
		return 15, true
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 15 {
			return n, true
		}
	}
	return 0, false
}
