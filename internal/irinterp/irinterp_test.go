package irinterp

import (
	"strings"
	"testing"

	"ggcg/internal/ir"
)

// unitOf builds a single-function unit whose body is given as parsed trees.
func unitOf(globals []ir.Global, fname string, frameSize int, items ...ir.Item) *ir.Unit {
	f := &ir.Func{Name: fname, FrameSize: frameSize, Items: items}
	return &ir.Unit{Globals: globals, Funcs: []*ir.Func{f}}
}

func tree(src string) ir.Item { return ir.TreeItem(ir.MustParse(src)) }

func TestAssignGlobal(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "a", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Name.l a) (Plus.l (Const.b 27) (Const.b 15)))`),
		tree(`(Ret.v)`),
	)
	ip := New(u)
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	if v, _ := ip.ReadGlobal("a", ir.Long); v != 42 {
		t.Errorf("a = %d, want 42", v)
	}
}

func TestAppendixExpression(t *testing.T) {
	// a := 27 + b with byte local b at fp-4 holding 100.
	u := unitOf([]ir.Global{{Name: "a", Type: ir.Long}}, "foo", 4,
		tree(`(Assign.b (Indir.b (Plus.l (Const.b -4) (Dreg.l fp))) (Const.b 100))`),
		tree(`(Assign.l (Name.l a) (Plus.l (Const.b 27) (Indir.b (Plus.l (Const.b -4) (Dreg.l fp)))))`),
		tree(`(Ret.v)`),
	)
	ip := New(u)
	if _, err := ip.Call("foo"); err != nil {
		t.Fatal(err)
	}
	if v, _ := ip.ReadGlobal("a", ir.Long); v != 127 {
		t.Errorf("a = %d, want 127", v)
	}
}

func TestBranchLoop(t *testing.T) {
	// i = 0; s = 0; L1: if i > 10 goto L2; s += i; i++; goto L1; L2: ret s
	u := unitOf([]ir.Global{{Name: "s", Type: ir.Long}, {Name: "i", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Name.l i) (Const.b 1))`),
		tree(`(Assign.l (Name.l s) (Const.b 0))`),
		ir.LabelItem(1),
		tree(`(CBranch (Cmp.l:gt (Indir.l (Name.l i)) (Const.b 10)) (Lab L2))`),
		tree(`(Assign.l (Name.l s) (Plus.l (Indir.l (Name.l s)) (Indir.l (Name.l i))))`),
		tree(`(Assign.l (Name.l i) (Plus.l (Indir.l (Name.l i)) (Const.b 1)))`),
		tree(`(Jump (Lab L1))`),
		ir.LabelItem(2),
		tree(`(Ret.l (Indir.l (Name.l s)))`),
	)
	ip := New(u)
	r, err := ip.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 55 {
		t.Errorf("sum = %d, want 55", r)
	}
}

func TestArgsAndRecursion(t *testing.T) {
	// fact(n): if n <= 1 return 1; return n * fact(n-1)  (pre-transform
	// form with the call embedded in the expression).
	f := &ir.Func{Name: "fact"}
	arg := `(Indir.l (Plus.l (Const.b 4) (Dreg.l ap)))`
	f.Emit(ir.MustParse(`(CBranch (Cmp.l:gt ` + arg + ` (Const.b 1)) (Lab L1))`))
	f.Emit(ir.MustParse(`(Ret.l (Const.b 1))`))
	f.EmitLabel(1)
	call := &ir.Node{Op: ir.Call, Type: ir.Long, Sym: "fact", Kids: []*ir.Node{
		ir.MustParse(`(Minus.l ` + arg + ` (Const.b 1))`),
	}}
	f.Emit(ir.Bin(ir.Assign, ir.Long, ir.NewName(ir.Long, "t"), call))
	f.Emit(ir.MustParse(`(Ret.l (Mul.l ` + arg + ` (Indir.l (Name.l t))))`))
	u := &ir.Unit{Globals: []ir.Global{{Name: "t", Type: ir.Long}}, Funcs: []*ir.Func{f}}
	ip := New(u)
	r, err := ip.Call("fact", 6)
	if err != nil {
		t.Fatal(err)
	}
	if r != 720 {
		t.Errorf("fact(6) = %d, want 720", r)
	}
}

func TestLeafCallWithArgStatements(t *testing.T) {
	// Post-transform form: Arg statements push, Call is a leaf.
	add := &ir.Func{Name: "add"}
	add.Emit(ir.MustParse(`(Ret.l (Plus.l (Indir.l (Plus.l (Const.b 4) (Dreg.l ap))) (Indir.l (Plus.l (Const.b 8) (Dreg.l ap)))))`))
	main := &ir.Func{Name: "main", FrameSize: 4}
	main.Emit(ir.MustParse(`(Arg.l (Const.b 12))`))
	main.Emit(ir.MustParse(`(Arg.l (Const.b 30))`))
	callLeaf := &ir.Node{Op: ir.Call, Type: ir.Long, Sym: "add", Val: 2}
	main.Emit(ir.Bin(ir.Assign, ir.Long, ir.FrameRef(ir.Long, -4), callLeaf))
	main.Emit(ir.MustParse(`(Ret.l (Indir.l (Plus.l (Const.b -4) (Dreg.l fp))))`))
	u := &ir.Unit{Funcs: []*ir.Func{add, main}}
	ip := New(u)
	r, err := ip.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 42 {
		t.Errorf("add(30,12) = %d, want 42", r)
	}
}

func TestShortCircuitAndSelect(t *testing.T) {
	// g = (x != 0 && 10/x > 2) ? 1 : 2 with x = 0 must not divide by zero.
	u := unitOf([]ir.Global{{Name: "g", Type: ir.Long}, {Name: "x", Type: ir.Long}}, "main", 0,
		ir.TreeItem(ir.Bin(ir.Assign, ir.Long, ir.NewName(ir.Long, "g"),
			&ir.Node{Op: ir.Select, Type: ir.Long, Kids: []*ir.Node{
				ir.Bin(ir.AndAnd, ir.Long,
					ir.MustParse(`(Ne.l (Indir.l (Name.l x)) (Const.b 0))`),
					ir.MustParse(`(Gt.l (Div.l (Const.b 10) (Indir.l (Name.l x))) (Const.b 2))`)),
				ir.NewConst(ir.Byte, 1),
				ir.NewConst(ir.Byte, 2),
			}})),
		tree(`(Ret.v)`),
	)
	ip := New(u)
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	if v, _ := ip.ReadGlobal("g", ir.Long); v != 2 {
		t.Errorf("g = %d, want 2", v)
	}
}

func TestUnsignedSemantics(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "g", Type: ir.ULong}}, "main", 0,
		ir.TreeItem(ir.Bin(ir.Assign, ir.ULong, ir.NewName(ir.ULong, "g"),
			ir.Bin(ir.Div, ir.ULong, ir.NewConst(ir.ULong, -2), ir.NewConst(ir.ULong, 10)))),
		tree(`(Ret.v)`),
	)
	ip := New(u)
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	v, _ := ip.ReadGlobal("g", ir.ULong)
	if uint32(v) != (1<<32-2)/10 {
		t.Errorf("unsigned div = %d", uint32(v))
	}
	// Unsigned comparison: (unsigned)-1 > 1.
	b, err := ip.compare(ir.RGT, ir.NewConst(ir.ULong, -1), ir.NewConst(ir.ULong, 1), ir.ULong)
	if err != nil || !b {
		t.Errorf("unsigned -1 > 1 = %v, %v", b, err)
	}
}

func TestPostIncPreDec(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "i", Type: ir.Long}, {Name: "a", Type: ir.Long}, {Name: "b", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Name.l i) (Const.b 5))`),
		tree(`(Assign.l (Name.l a) (PostInc.l (Name.l i) (Const.b 1)))`),
		tree(`(Assign.l (Name.l b) (PreDec.l (Name.l i) (Const.b 1)))`),
		tree(`(Ret.v)`),
	)
	ip := New(u)
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	a, _ := ip.ReadGlobal("a", ir.Long)
	b, _ := ip.ReadGlobal("b", ir.Long)
	i, _ := ip.ReadGlobal("i", ir.Long)
	if a != 5 || b != 5 || i != 5 {
		t.Errorf("a,b,i = %d,%d,%d; want 5,5,5", a, b, i)
	}
}

func TestReverseOperators(t *testing.T) {
	// RMinus(b, a) must compute a-b.
	u := unitOf([]ir.Global{{Name: "g", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Name.l g) (RMinus.l (Const.b 12) (Const.b 30)))`),
		tree(`(Ret.v)`),
	)
	ip := New(u)
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	if v, _ := ip.ReadGlobal("g", ir.Long); v != 18 {
		t.Errorf("RMinus = %d, want 18 (30-12)", v)
	}
}

func TestFloatsAndConversion(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "d", Type: ir.Double}, {Name: "n", Type: ir.Long}}, "main", 0,
		tree(`(Assign.d (Name.d d) (Mul.d (FConst.d 1.5) (FConst.d 4)))`),
		ir.TreeItem(ir.Bin(ir.Assign, ir.Long, ir.NewName(ir.Long, "n"),
			ir.Un(ir.Conv, ir.Long, ir.MustParse(`(Indir.d (Name.d d))`)))),
		tree(`(Ret.v)`),
	)
	ip := New(u)
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	if v, _ := ip.ReadGlobalFloat("d", ir.Double); v != 6 {
		t.Errorf("d = %g", v)
	}
	if v, _ := ip.ReadGlobal("n", ir.Long); v != 6 {
		t.Errorf("n = %d", v)
	}
}

func TestByteTruncationAndWidening(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "c", Type: ir.Byte}, {Name: "n", Type: ir.Long}}, "main", 0,
		tree(`(Assign.b (Name.b c) (Const.w 300))`), // truncates to 44
		tree(`(Assign.l (Name.l n) (Indir.b (Name.b c)))`),
		tree(`(Ret.v)`),
	)
	ip := New(u)
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	if v, _ := ip.ReadGlobal("c", ir.Byte); v != 44 {
		t.Errorf("c = %d, want 44", v)
	}
	if v, _ := ip.ReadGlobal("n", ir.Long); v != 44 {
		t.Errorf("n = %d, want 44", v)
	}
}

func TestErrors(t *testing.T) {
	ip := New(unitOf(nil, "main", 0, tree(`(Ret.v)`)))
	if _, err := ip.Call("nosuch"); err == nil {
		t.Error("calling missing function succeeded")
	}
	u := unitOf(nil, "main", 0, tree(`(Jump (Lab L9))`))
	if _, err := New(u).Call("main"); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("undefined label: %v", err)
	}
	u2 := unitOf([]ir.Global{{Name: "g", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Name.l g) (Div.l (Const.b 1) (Const.b 0)))`))
	if _, err := New(u2).Call("main"); err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("div by zero: %v", err)
	}
	// Infinite loop hits the step limit.
	u3 := unitOf(nil, "main", 0, ir.LabelItem(1), tree(`(Jump (Lab L1))`))
	ip3 := New(u3)
	ip3.MaxSteps = 100
	if _, err := ip3.Call("main"); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("step limit: %v", err)
	}
}

func TestGlobalArrayLayout(t *testing.T) {
	u := unitOf([]ir.Global{
		{Name: "arr", Type: ir.Long, Size: 40},
		{Name: "x", Type: ir.Long},
	}, "main", 0,
		// arr[3] = 7 via explicit address arithmetic.
		tree(`(Assign.l (Indir.l (Plus.l (Const.b 12) (Name.l arr))) (Const.b 7))`),
		tree(`(Assign.l (Name.l x) (Indir.l (Plus.l (Const.b 12) (Name.l arr))))`),
		tree(`(Ret.v)`),
	)
	ip := New(u)
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	if v, _ := ip.ReadGlobal("x", ir.Long); v != 7 {
		t.Errorf("x = %d, want 7", v)
	}
}
