package irinterp

import (
	"testing"

	"ggcg/internal/ir"
)

func TestFloatReverseOps(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "d", Type: ir.Double}}, "main", 0,
		tree(`(Assign.d (Name.d d) (RDiv.d (FConst.d 4) (FConst.d 10)))`),
		tree(`(Ret.l (Conv.l (Indir.d (Name.d d))))`),
	)
	r, err := New(u).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 { // 10/4 = 2.5 -> 2
		t.Errorf("RDiv.d = %d, want 2", r)
	}
}

func TestFloatSelect(t *testing.T) {
	f := &ir.Func{Name: "main"}
	sel := &ir.Node{Op: ir.Select, Type: ir.Double, Kids: []*ir.Node{
		ir.MustParse(`(Gt.l (Const.b 2) (Const.b 1))`),
		ir.NewFConst(ir.Double, 7.5),
		ir.NewFConst(ir.Double, 1.5),
	}}
	f.Emit(ir.Bin(ir.Assign, ir.Double, ir.NewName(ir.Double, "d"), sel))
	f.Emit(&ir.Node{Op: ir.Ret, Type: ir.Long,
		Kids: []*ir.Node{ir.Un(ir.Conv, ir.Long, ir.GlobalRef(ir.Double, "d"))}})
	u := &ir.Unit{Globals: []ir.Global{{Name: "d", Type: ir.Double}}, Funcs: []*ir.Func{f}}
	r, err := New(u).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 7 {
		t.Errorf("float select = %d, want 7", r)
	}
}

func TestRegUseAndDregAssignment(t *testing.T) {
	// Phase-1 style register transfer: Assign to Dreg r5, use via RegUse.
	u := unitOf([]ir.Global{{Name: "g", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Dreg.l r5) (Const.b 21))`),
		tree(`(Assign.l (Name.l g) (Plus.l (RegUse.l r5) (RegUse.l r5)))`),
		tree(`(Ret.l (Indir.l (Name.l g)))`),
	)
	r, err := New(u).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 42 {
		t.Errorf("RegUse sum = %d, want 42", r)
	}
}

func TestFloatAssignFromIntSource(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "f", Type: ir.Float}, {Name: "n", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Name.l n) (Const.b 9))`),
		tree(`(Assign.f (Name.f f) (Indir.l (Name.l n)))`),
		tree(`(Ret.l (Conv.l (Indir.f (Name.f f))))`),
	)
	r, err := New(u).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 9 {
		t.Errorf("int->float assign = %d, want 9", r)
	}
}

func TestIntAssignFromFloatSource(t *testing.T) {
	// Assigning a float to an int location goes through the explicit
	// conversion the front end inserts, but the interpreter also handles
	// the raw mixed assignment.
	u := unitOf([]ir.Global{{Name: "n", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Name.l n) (FConst.d 6.9))`),
		tree(`(Ret.l (Indir.l (Name.l n)))`),
	)
	r, err := New(u).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 6 {
		t.Errorf("float->int assign = %d, want 6", r)
	}
}

func TestNotAndComplAsValues(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "g", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Name.l g) (Plus.l (Not (Const.b 0)) (Compl.l (Const.b -3))))`),
		tree(`(Ret.l (Indir.l (Name.l g)))`),
	)
	r, err := New(u).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 1+2 {
		t.Errorf("got %d, want 3", r)
	}
}

func TestFloatCondition(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "d", Type: ir.Double}, {Name: "g", Type: ir.Long}}, "main", 0,
		tree(`(Assign.d (Name.d d) (FConst.d 0.5))`),
		tree(`(CBranch (Cmp.d:gt (Indir.d (Name.d d)) (FConst.d 0.25)) (Lab L1))`),
		tree(`(Assign.l (Name.l g) (Const.b 1))`),
		tree(`(Jump (Lab L2))`),
		ir.LabelItem(1),
		tree(`(Assign.l (Name.l g) (Const.b 2))`),
		ir.LabelItem(2),
		tree(`(Ret.l (Indir.l (Name.l g)))`),
	)
	r, err := New(u).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 {
		t.Errorf("float compare took wrong path: %d", r)
	}
}

func TestWriteGlobalHelper(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "g", Type: ir.Word}}, "main", 0,
		tree(`(Ret.l (Indir.w (Name.w g)))`),
	)
	ip := New(u)
	if err := ip.WriteGlobal("g", ir.Word, -1234); err != nil {
		t.Fatal(err)
	}
	r, err := ip.CallPreservingState("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != -1234 {
		t.Errorf("got %d", r)
	}
	if err := ip.WriteGlobal("nosuch", ir.Word, 1); err == nil {
		t.Error("writing a missing global succeeded")
	}
	if _, err := ip.ReadGlobalFloat("nosuch", ir.Double); err == nil {
		t.Error("reading a missing float global succeeded")
	}
}

func TestNotOfNonzero(t *testing.T) {
	u := unitOf([]ir.Global{{Name: "g", Type: ir.Long}}, "main", 0,
		tree(`(Assign.l (Name.l g) (Not (Const.b 5)))`),
		tree(`(Ret.l (Indir.l (Name.l g)))`),
	)
	r, err := New(u).Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("!5 = %d, want 0", r)
	}
}
