package irinterp

import (
	"fmt"
	"math"

	"ggcg/internal/ir"
)

func (ip *Interp) step() error {
	if ip.Steps++; ip.Steps > ip.MaxSteps {
		return fmt.Errorf("step limit %d exceeded", ip.MaxSteps)
	}
	return nil
}

// lval is a resolved assignable location: a memory address or a register.
type lval struct {
	isReg bool
	reg   int
	addr  uint32
}

func (ip *Interp) lvalue(n *ir.Node) (lval, error) {
	switch n.Op {
	case ir.Name:
		a, ok := ip.globals[n.Sym]
		if !ok {
			return lval{}, fmt.Errorf("undefined global %q", n.Sym)
		}
		return lval{addr: a}, nil
	case ir.Indir:
		a, err := ip.eval(n.Kids[0])
		if err != nil {
			return lval{}, err
		}
		return lval{addr: uint32(a)}, nil
	case ir.Dreg, ir.RegUse:
		return lval{isReg: true, reg: int(n.Val)}, nil
	}
	return lval{}, fmt.Errorf("%v is not an lvalue", n.Op)
}

func (ip *Interp) loadInt(l lval, t ir.Type) int64 {
	if l.isReg {
		return extend(uint64(ip.regs[l.reg]), t)
	}
	return extend(ip.loadMem(l.addr, t.Size()), t)
}

func (ip *Interp) storeInt(l lval, t ir.Type, v int64) {
	if l.isReg {
		switch t.Size() {
		case 1:
			ip.regs[l.reg] = ip.regs[l.reg]&^0xff | uint32(uint8(v))
		case 2:
			ip.regs[l.reg] = ip.regs[l.reg]&^0xffff | uint32(uint16(v))
		default:
			ip.regs[l.reg] = uint32(v)
		}
		return
	}
	ip.storeMem(l.addr, t.Size(), uint64(v))
}

func (ip *Interp) loadFloat(l lval, t ir.Type) float64 {
	if l.isReg {
		if t == ir.Float {
			return float64(math.Float32frombits(ip.regs[l.reg]))
		}
		return math.Float64frombits(uint64(ip.regs[l.reg]) | uint64(ip.regs[l.reg+1])<<32)
	}
	if t == ir.Float {
		return float64(math.Float32frombits(uint32(ip.loadMem(l.addr, 4))))
	}
	return math.Float64frombits(ip.loadMem(l.addr, 8))
}

func (ip *Interp) storeFloat(l lval, t ir.Type, v float64) {
	if l.isReg {
		if t == ir.Float {
			ip.regs[l.reg] = math.Float32bits(float32(v))
			return
		}
		bits := math.Float64bits(v)
		ip.regs[l.reg] = uint32(bits)
		ip.regs[l.reg+1] = uint32(bits >> 32)
		return
	}
	if t == ir.Float {
		ip.storeMem(l.addr, 4, uint64(math.Float32bits(float32(v))))
		return
	}
	ip.storeMem(l.addr, 8, math.Float64bits(v))
}

func (ip *Interp) setRetF(t ir.Type, v float64) {
	ip.storeFloat(lval{isReg: true, reg: 0}, t, v)
}

func (ip *Interp) loadMem(addr uint32, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(ip.mem[(addr+uint32(i))%uint32(len(ip.mem))]) << (8 * i)
	}
	return v
}

func (ip *Interp) storeMem(addr uint32, size int, v uint64) {
	for i := 0; i < size; i++ {
		ip.mem[(addr+uint32(i))%uint32(len(ip.mem))] = byte(v >> (8 * i))
	}
}

func (ip *Interp) push32(v uint32) {
	ip.regs[ir.RegSP] -= 4
	ip.storeMem(ip.regs[ir.RegSP], 4, uint64(v))
}

// extend interprets raw bytes as a value of type t: sign-extended for
// signed types, zero-extended for unsigned ones.
func extend(raw uint64, t ir.Type) int64 {
	switch t.Size() {
	case 1:
		if t.IsUnsigned() {
			return int64(uint8(raw))
		}
		return int64(int8(raw))
	case 2:
		if t.IsUnsigned() {
			return int64(uint16(raw))
		}
		return int64(int16(raw))
	default:
		if t.IsUnsigned() {
			return int64(uint32(raw))
		}
		return int64(int32(raw))
	}
}

// trunc truncates an arithmetic result to type t's value range.
func trunc(v int64, t ir.Type) int64 {
	return extend(uint64(v), t)
}

// shiftLeft implements the machine's ashl semantics for positive counts.
func shiftLeft(v, cnt int64) int64 {
	if cnt >= 32 {
		return 0
	}
	if cnt <= -32 {
		return v >> 31
	}
	if cnt < 0 {
		return v >> uint(-cnt)
	}
	return v << uint(cnt)
}

// eval evaluates an integer-typed expression, returning its value in the
// type's range.
func (ip *Interp) eval(n *ir.Node) (int64, error) {
	if err := ip.step(); err != nil {
		return 0, err
	}
	t := n.Type
	switch n.Op {
	case ir.Const:
		return trunc(n.Val, t), nil
	case ir.Name:
		a, ok := ip.globals[n.Sym]
		if !ok {
			return 0, fmt.Errorf("undefined global %q", n.Sym)
		}
		return int64(a), nil
	case ir.Dreg, ir.RegUse:
		return extend(uint64(ip.regs[n.Val]), t), nil
	case ir.Indir:
		a, err := ip.eval(n.Kids[0])
		if err != nil {
			return 0, err
		}
		return ip.loadInt(lval{addr: uint32(a)}, t), nil
	case ir.Conv:
		if n.Kids[0].Type.IsFloat() {
			f, err := ip.evalF(n.Kids[0])
			if err != nil {
				return 0, err
			}
			return trunc(int64(f), t), nil
		}
		v, err := ip.eval(n.Kids[0])
		if err != nil {
			return 0, err
		}
		return trunc(v, t), nil
	case ir.Neg:
		v, err := ip.eval(n.Kids[0])
		if err != nil {
			return 0, err
		}
		return trunc(-v, t), nil
	case ir.Compl:
		v, err := ip.eval(n.Kids[0])
		if err != nil {
			return 0, err
		}
		return trunc(^v, t), nil
	case ir.Not:
		v, err := ip.eval(n.Kids[0])
		if err != nil {
			return 0, err
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case ir.Plus, ir.Minus, ir.Mul, ir.Div, ir.Mod, ir.And, ir.Or, ir.Xor, ir.Lsh, ir.Rsh,
		ir.RMinus, ir.RDiv, ir.RMod, ir.RLsh, ir.RRsh:
		return ip.evalBin(n)
	case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
		ct := n.Type
		if ct == ir.Void {
			ct = relType(n)
		}
		b, err := ip.compare(n.Op.Rel(), n.Kids[0], n.Kids[1], ct)
		if err != nil {
			return 0, err
		}
		if b {
			return 1, nil
		}
		return 0, nil
	case ir.AndAnd, ir.OrOr:
		l, err := ip.evalCond(n.Kids[0])
		if err != nil {
			return 0, err
		}
		if n.Op == ir.AndAnd && !l {
			return 0, nil
		}
		if n.Op == ir.OrOr && l {
			return 1, nil
		}
		r, err := ip.evalCond(n.Kids[1])
		if err != nil {
			return 0, err
		}
		if r {
			return 1, nil
		}
		return 0, nil
	case ir.Select:
		c, err := ip.evalCond(n.Kids[0])
		if err != nil {
			return 0, err
		}
		if c {
			return ip.eval(n.Kids[1])
		}
		return ip.eval(n.Kids[2])
	case ir.Assign, ir.RAssign:
		dst, src := n.Kids[0], n.Kids[1]
		if n.Op == ir.RAssign {
			dst, src = n.Kids[1], n.Kids[0]
		}
		var v int64
		var err error
		if src.Type.IsFloat() && !t.IsFloat() {
			var f float64
			f, err = ip.evalF(src)
			v = int64(f)
		} else {
			v, err = ip.eval(src)
		}
		if err != nil {
			return 0, err
		}
		l, err := ip.lvalue(dst)
		if err != nil {
			return 0, err
		}
		v = trunc(v, t)
		ip.storeInt(l, t, v)
		return v, nil
	case ir.PostInc, ir.PostDec, ir.PreInc, ir.PreDec:
		l, err := ip.lvalue(n.Kids[0])
		if err != nil {
			return 0, err
		}
		amt, err := ip.eval(n.Kids[1])
		if err != nil {
			return 0, err
		}
		old := ip.loadInt(l, t)
		delta := amt
		if n.Op == ir.PostDec || n.Op == ir.PreDec {
			delta = -amt
		}
		nv := trunc(old+delta, t)
		ip.storeInt(l, t, nv)
		if n.Op == ir.PostInc || n.Op == ir.PostDec {
			return old, nil
		}
		return nv, nil
	case ir.Call:
		if err := ip.call(n); err != nil {
			return 0, err
		}
		return extend(uint64(ip.regs[0]), t), nil
	}
	return 0, fmt.Errorf("cannot evaluate %v as integer", n.Op)
}

func (ip *Interp) evalBin(n *ir.Node) (int64, error) {
	op := n.Op
	if fwd, isRev := op.Forward(); isRev {
		// Reverse operators: the left subtree holds the (textually) right
		// operand, evaluated first (§5.1.3).
		b, err := ip.eval(n.Kids[0])
		if err != nil {
			return 0, err
		}
		a, err := ip.eval(n.Kids[1])
		if err != nil {
			return 0, err
		}
		return ip.applyBin(fwd, n.Type, a, b)
	}
	a, err := ip.eval(n.Kids[0])
	if err != nil {
		return 0, err
	}
	b, err := ip.eval(n.Kids[1])
	if err != nil {
		return 0, err
	}
	return ip.applyBin(op, n.Type, a, b)
}

func (ip *Interp) applyBin(op ir.Op, t ir.Type, a, b int64) (int64, error) {
	switch op {
	case ir.Plus:
		return trunc(a+b, t), nil
	case ir.Minus:
		return trunc(a-b, t), nil
	case ir.Mul:
		return trunc(a*b, t), nil
	case ir.Div:
		if b == 0 {
			return 0, fmt.Errorf("divide by zero")
		}
		if t.IsUnsigned() {
			return trunc(int64(uint32(a)/uint32(b)), t), nil
		}
		return trunc(a/b, t), nil
	case ir.Mod:
		if b == 0 {
			return 0, fmt.Errorf("modulus by zero")
		}
		if t.IsUnsigned() {
			return trunc(int64(uint32(a)%uint32(b)), t), nil
		}
		return trunc(a%b, t), nil
	case ir.And:
		return trunc(a&b, t), nil
	case ir.Or:
		return trunc(a|b, t), nil
	case ir.Xor:
		return trunc(a^b, t), nil
	case ir.Lsh:
		return trunc(shiftLeft(a, b), t), nil
	case ir.Rsh:
		if t.IsUnsigned() {
			if b >= 32 || b < 0 {
				return 0, nil
			}
			return trunc(int64(uint32(a)>>uint(b)), t), nil
		}
		return trunc(shiftLeft(a, -b), t), nil
	}
	return 0, fmt.Errorf("bad binary operator %v", op)
}

// evalF evaluates an expression in floating context. Integer-typed
// subtrees are evaluated as integers and widened, the way the grammar's
// conversion chains widen them.
func (ip *Interp) evalF(n *ir.Node) (float64, error) {
	if err := ip.step(); err != nil {
		return 0, err
	}
	if n.Type.IsInteger() {
		v, err := ip.eval(n)
		return float64(v), err
	}
	switch n.Op {
	case ir.FConst:
		return roundTo(n.F, n.Type), nil
	case ir.Const:
		// An integer constant in floating context; the grammar converts
		// these through the chain productions.
		return float64(n.Val), nil
	case ir.Indir:
		a, err := ip.eval(n.Kids[0])
		if err != nil {
			return 0, err
		}
		return ip.loadFloat(lval{addr: uint32(a)}, n.Type), nil
	case ir.Dreg, ir.RegUse:
		return ip.loadFloat(lval{isReg: true, reg: int(n.Val)}, n.Type), nil
	case ir.Conv:
		if n.Kids[0].Type.IsFloat() {
			v, err := ip.evalF(n.Kids[0])
			if err != nil {
				return 0, err
			}
			return roundTo(v, n.Type), nil
		}
		v, err := ip.eval(n.Kids[0])
		if err != nil {
			return 0, err
		}
		return roundTo(float64(v), n.Type), nil
	case ir.Neg:
		v, err := ip.evalF(n.Kids[0])
		if err != nil {
			return 0, err
		}
		return -v, nil
	case ir.Plus, ir.Minus, ir.Mul, ir.Div, ir.RMinus, ir.RDiv:
		op := n.Op
		l, r := n.Kids[0], n.Kids[1]
		if fwd, isRev := op.Forward(); isRev {
			op = fwd
			a, err := ip.evalF(l) // evaluated first, but it is the right operand
			if err != nil {
				return 0, err
			}
			b, err := ip.evalF(r)
			if err != nil {
				return 0, err
			}
			return applyBinF(op, n.Type, b, a)
		}
		a, err := ip.evalF(l)
		if err != nil {
			return 0, err
		}
		b, err := ip.evalF(r)
		if err != nil {
			return 0, err
		}
		return applyBinF(op, n.Type, a, b)
	case ir.Select:
		c, err := ip.evalCond(n.Kids[0])
		if err != nil {
			return 0, err
		}
		if c {
			return ip.evalF(n.Kids[1])
		}
		return ip.evalF(n.Kids[2])
	case ir.Assign, ir.RAssign:
		dst, src := n.Kids[0], n.Kids[1]
		if n.Op == ir.RAssign {
			dst, src = n.Kids[1], n.Kids[0]
		}
		var v float64
		var err error
		if src.Type.IsFloat() {
			v, err = ip.evalF(src)
		} else {
			var iv int64
			iv, err = ip.eval(src)
			v = float64(iv)
		}
		if err != nil {
			return 0, err
		}
		l, err := ip.lvalue(dst)
		if err != nil {
			return 0, err
		}
		v = roundTo(v, n.Type)
		ip.storeFloat(l, n.Type, v)
		return v, nil
	case ir.Call:
		if err := ip.call(n); err != nil {
			return 0, err
		}
		return ip.loadFloat(lval{isReg: true, reg: 0}, n.Type), nil
	}
	return 0, fmt.Errorf("cannot evaluate %v as floating", n.Op)
}

func applyBinF(op ir.Op, t ir.Type, a, b float64) (float64, error) {
	switch op {
	case ir.Plus:
		return roundTo(a+b, t), nil
	case ir.Minus:
		return roundTo(a-b, t), nil
	case ir.Mul:
		return roundTo(a*b, t), nil
	case ir.Div:
		if b == 0 {
			return 0, fmt.Errorf("floating divide by zero")
		}
		return roundTo(a/b, t), nil
	}
	return 0, fmt.Errorf("bad floating operator %v", op)
}

// roundTo rounds a double value through float32 when the type is Float, so
// the oracle sees the same precision the 4-byte machine operations do.
func roundTo(v float64, t ir.Type) float64 {
	if t == ir.Float {
		return float64(float32(v))
	}
	return v
}

// call invokes a Call node. Before phase 1a the arguments are the node's
// children, evaluated right to left; afterwards the call is a leaf and its
// Val words have already been pushed by Arg statements.
func (ip *Interp) call(n *ir.Node) error {
	if len(n.Kids) > 0 {
		var words []uint32
		for i := len(n.Kids) - 1; i >= 0; i-- {
			k := n.Kids[i]
			if k.Type.IsFloat() {
				v, err := ip.evalF(k)
				if err != nil {
					return err
				}
				bits := math.Float64bits(v)
				words = append([]uint32{uint32(bits), uint32(bits >> 32)}, words...)
				continue
			}
			v, err := ip.eval(k)
			if err != nil {
				return err
			}
			words = append([]uint32{uint32(v)}, words...)
		}
		return ip.invoke(n.Sym, words)
	}
	// Leaf call: pop Val longwords pushed by Arg statements.
	nwords := int(n.Val)
	words := make([]uint32, nwords)
	for i := 0; i < nwords; i++ {
		words[i] = uint32(ip.loadMem(ip.regs[ir.RegSP]+uint32(4*i), 4))
	}
	ip.regs[ir.RegSP] += uint32(4 * nwords)
	return ip.invoke(n.Sym, words)
}

// ReadGlobal returns the named global's integer value.
func (ip *Interp) ReadGlobal(name string, t ir.Type) (int64, error) {
	a, ok := ip.globals[name]
	if !ok {
		return 0, fmt.Errorf("irinterp: no global %q", name)
	}
	return extend(ip.loadMem(a, t.Size()), t), nil
}

// ReadGlobalFloat returns the named global's floating value.
func (ip *Interp) ReadGlobalFloat(name string, t ir.Type) (float64, error) {
	a, ok := ip.globals[name]
	if !ok {
		return 0, fmt.Errorf("irinterp: no global %q", name)
	}
	return ip.loadFloat(lval{addr: a}, t), nil
}

// WriteGlobal stores an integer into the named global.
func (ip *Interp) WriteGlobal(name string, t ir.Type, v int64) error {
	a, ok := ip.globals[name]
	if !ok {
		return fmt.Errorf("irinterp: no global %q", name)
	}
	ip.storeMem(a, t.Size(), uint64(v))
	return nil
}
