// Package irinterp interprets intermediate-representation programs
// directly, independent of any code generator. It is the correctness oracle
// for differential testing: the same ir.Unit is compiled by the
// Graham-Glanville code generator and by the PCC-style baseline, executed
// on the VAX simulator, and the results compared with this interpreter's
// (replacing the validation suites of §8 of the paper).
//
// The interpreter models the same machine conventions the code generators
// target — a byte-addressable memory, frame/argument/stack pointer
// registers, and argument passing at positive ap offsets — because the
// trees address locals and arguments through explicit address arithmetic on
// the dedicated registers.
package irinterp

import (
	"fmt"
	"math"

	"ggcg/internal/ir"
)

// Interp executes an ir.Unit.
type Interp struct {
	unit    *ir.Unit
	funcs   map[string]*ir.Func
	globals map[string]uint32

	mem  []byte
	regs [16]uint32

	// Steps counts evaluated tree nodes, bounded by MaxSteps.
	Steps    int64
	MaxSteps int64

	retValI int64
	retValF float64
}

const dataBase = 0x1000

// New builds an interpreter for the unit, laying out globals the same way
// the simulator's assembler does.
func New(u *ir.Unit) *Interp {
	ip := &Interp{
		unit:     u,
		funcs:    make(map[string]*ir.Func),
		globals:  make(map[string]uint32),
		mem:      make([]byte, 1<<20),
		MaxSteps: 50_000_000,
	}
	cursor := uint32(dataBase)
	for _, g := range u.Globals {
		size := g.Size
		if size == 0 {
			size = g.Type.Size()
		}
		if r := cursor % 4; r != 0 {
			cursor += 4 - r
		}
		ip.globals[g.Name] = cursor
		cursor += uint32(size)
	}
	for _, f := range u.Funcs {
		ip.funcs[f.Name] = f
	}
	ip.Reset()
	return ip
}

// Reset clears memory and registers and reapplies global initializers.
func (ip *Interp) Reset() {
	for i := range ip.mem {
		ip.mem[i] = 0
	}
	ip.regs = [16]uint32{}
	ip.regs[ir.RegSP] = uint32(len(ip.mem) - 64)
	for _, g := range ip.unit.Globals {
		if !g.HasInit {
			continue
		}
		a := ip.globals[g.Name]
		if g.Type.IsFloat() {
			ip.storeFloat(lval{addr: a}, g.Type, g.FInit)
		} else {
			ip.storeMem(a, g.Type.Size(), uint64(g.Init))
		}
	}
}

// Call resets the interpreter and invokes the named function with longword
// arguments, returning its value as a signed 32-bit integer.
func (ip *Interp) Call(name string, args ...int64) (int64, error) {
	ip.Reset()
	return ip.CallPreservingState(name, args...)
}

// CallPreservingState is Call without the Reset.
func (ip *Interp) CallPreservingState(name string, args ...int64) (int64, error) {
	words := make([]uint32, len(args))
	for i, a := range args {
		words[i] = uint32(a)
	}
	if err := ip.invoke(name, words); err != nil {
		return 0, err
	}
	return int64(int32(ip.regs[0])), nil
}

// invoke runs a function with the given argument words, mimicking the
// simulator's frame protocol: arguments end up at 4(ap), 8(ap), ...
func (ip *Interp) invoke(name string, argWords []uint32) error {
	f, ok := ip.funcs[name]
	if !ok {
		return fmt.Errorf("irinterp: no function %q", name)
	}
	// Push arguments (first argument highest, nearest ap+4).
	for i := len(argWords) - 1; i >= 0; i-- {
		ip.push32(argWords[i])
	}
	ip.push32(uint32(len(argWords)))
	savedAP, savedFP := ip.regs[ir.RegAP], ip.regs[ir.RegFP]
	var savedScratch [12]uint32
	copy(savedScratch[:], ip.regs[:12])
	ip.regs[ir.RegAP] = ip.regs[ir.RegSP]
	ip.regs[ir.RegFP] = ip.regs[ir.RegSP]
	// Allocate locals and temporaries.
	frame := uint32(f.TotalFrame() + 64)
	ip.regs[ir.RegSP] -= frame

	err := ip.runBody(f)

	ip.regs[ir.RegSP] = ip.regs[ir.RegAP] + 4 + 4*uint32(len(argWords))
	ip.regs[ir.RegAP], ip.regs[ir.RegFP] = savedAP, savedFP
	// The entry mask restores r6-r11; r0/r1 carry the return value.
	copy(ip.regs[2:12], savedScratch[2:12])
	return err
}

// runBody executes a function body's items in order, following branches.
func (ip *Interp) runBody(f *ir.Func) error {
	labels := make(map[int]int)
	for i, it := range f.Items {
		if it.Kind == ir.ItemLabel {
			labels[it.Label] = i
		}
	}
	pc := 0
	for pc < len(f.Items) {
		if err := ip.step(); err != nil {
			return fmt.Errorf("irinterp: %s: %v", f.Name, err)
		}
		it := f.Items[pc]
		if it.Kind == ir.ItemLabel {
			pc++
			continue
		}
		jump, returned, err := ip.execTree(it.Tree)
		if err != nil {
			return fmt.Errorf("irinterp: %s: %v (tree %s)", f.Name, err, it.Tree)
		}
		if returned {
			return nil
		}
		if jump >= 0 {
			to, ok := labels[jump]
			if !ok {
				return fmt.Errorf("irinterp: %s: undefined label L%d", f.Name, jump)
			}
			pc = to
			continue
		}
		pc++
	}
	return nil
}

// execTree executes one statement tree. It returns a label to jump to
// (or -1) and whether the function returned.
func (ip *Interp) execTree(n *ir.Node) (jump int, returned bool, err error) {
	switch n.Op {
	case ir.Jump:
		return int(n.Kids[0].Val), false, nil
	case ir.CBranch:
		taken, err := ip.evalCond(n.Kids[0])
		if err != nil {
			return -1, false, err
		}
		if taken {
			return int(n.Kids[1].Val), false, nil
		}
		return -1, false, nil
	case ir.Ret:
		if len(n.Kids) == 1 {
			if n.Kids[0].Type.IsFloat() {
				v, err := ip.evalF(n.Kids[0])
				if err != nil {
					return -1, false, err
				}
				ip.setRetF(n.Kids[0].Type, v)
			} else {
				v, err := ip.eval(n.Kids[0])
				if err != nil {
					return -1, false, err
				}
				ip.regs[0] = uint32(v)
			}
		}
		return -1, true, nil
	case ir.Arg:
		k := n.Kids[0]
		if k.Type.IsFloat() {
			v, err := ip.evalF(k)
			if err != nil {
				return -1, false, err
			}
			bits := math.Float64bits(v)
			ip.push32(uint32(bits >> 32))
			ip.push32(uint32(bits))
			return -1, false, nil
		}
		v, err := ip.eval(k)
		if err != nil {
			return -1, false, err
		}
		ip.push32(uint32(v))
		return -1, false, nil
	default:
		// An expression statement: evaluate for side effects.
		if n.Type.IsFloat() {
			_, err := ip.evalF(n)
			return -1, false, err
		}
		_, err := ip.eval(n)
		return -1, false, err
	}
}

// evalCond evaluates a conditional-branch test: a Cmp node or (before the
// transformation phase) a relational or boolean expression.
func (ip *Interp) evalCond(n *ir.Node) (bool, error) {
	if n.Op == ir.Cmp {
		return ip.compare(ir.Rel(n.Val), n.Kids[0], n.Kids[1], n.Type)
	}
	if n.Op.IsRelational() {
		t := n.Type
		if t == ir.Void {
			t = relType(n)
		}
		return ip.compare(n.Op.Rel(), n.Kids[0], n.Kids[1], t)
	}
	v, err := ip.eval(n)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// relType is the comparison type of a relational node: the wider of the
// operand types (the front end normally makes them agree).
func relType(n *ir.Node) ir.Type {
	a, b := n.Kids[0].Type, n.Kids[1].Type
	if a.Size() >= b.Size() {
		return a
	}
	return b
}

func (ip *Interp) compare(rel ir.Rel, l, r *ir.Node, t ir.Type) (bool, error) {
	if t.IsFloat() {
		a, err := ip.evalF(l)
		if err != nil {
			return false, err
		}
		b, err := ip.evalF(r)
		if err != nil {
			return false, err
		}
		switch rel {
		case ir.REQ:
			return a == b, nil
		case ir.RNE:
			return a != b, nil
		case ir.RLT:
			return a < b, nil
		case ir.RLE:
			return a <= b, nil
		case ir.RGT:
			return a > b, nil
		case ir.RGE:
			return a >= b, nil
		}
	}
	a, err := ip.eval(l)
	if err != nil {
		return false, err
	}
	b, err := ip.eval(r)
	if err != nil {
		return false, err
	}
	if t.IsUnsigned() {
		ua, ub := uint32(a), uint32(b)
		switch rel {
		case ir.REQ:
			return ua == ub, nil
		case ir.RNE:
			return ua != ub, nil
		case ir.RLT:
			return ua < ub, nil
		case ir.RLE:
			return ua <= ub, nil
		case ir.RGT:
			return ua > ub, nil
		case ir.RGE:
			return ua >= ub, nil
		}
	}
	switch rel {
	case ir.REQ:
		return a == b, nil
	case ir.RNE:
		return a != b, nil
	case ir.RLT:
		return a < b, nil
	case ir.RLE:
		return a <= b, nil
	case ir.RGT:
		return a > b, nil
	case ir.RGE:
		return a >= b, nil
	}
	return false, fmt.Errorf("bad relation %v", rel)
}
