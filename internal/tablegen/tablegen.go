// Package tablegen is the table constructor of the code generator
// generator (§3.2 of the paper): an SLR(1)-style parser generator
// specialized for machine description grammars.
//
// Machine description grammars are highly ambiguous, since the target
// machine usually implements an expression in many different ways. The
// constructor disambiguates by favoring a shift over a reduce in a
// shift/reduce conflict, and a reduction by the longest possible rule in a
// reduce/reduce conflict, so the table-driven pattern matcher implements
// the maximal munch method. If two or more longest rules remain, the
// matcher chooses among them dynamically using semantic attributes, so the
// table records a choice list instead of a single reduction.
//
// The constructor also ensures the pattern matcher cannot get into a
// looping configuration in which nonterminal chain rules are cyclically
// reduced, and it reports reachable error actions (syntactic blocks) and
// reductions guarded entirely by semantic qualifications (semantic blocks)
// as diagnostics.
package tablegen

import (
	"fmt"
	"unsafe"

	"ggcg/internal/cgram"
)

// ActionKind discriminates parser actions.
type ActionKind uint8

// Parser actions.
const (
	ActErr    ActionKind = iota // syntactic block
	ActShift                    // Arg is the successor state
	ActReduce                   // Arg is the production index
	ActAccept                   // end of a complete tree
	ActChoice                   // Arg indexes Choices: semantic dynamic choice
)

func (k ActionKind) String() string {
	switch k {
	case ActErr:
		return "error"
	case ActShift:
		return "shift"
	case ActReduce:
		return "reduce"
	case ActAccept:
		return "accept"
	case ActChoice:
		return "choice"
	}
	return fmt.Sprintf("ActionKind(%d)", uint8(k))
}

// Action is one entry of the ACTION table.
type Action struct {
	Kind ActionKind
	Arg  int32
}

// Conflict records a disambiguated parsing conflict, for diagnostics and
// for the grammar-debugging workflow of §6.2 (overfactoring shows up as
// incorrectly resolved conflicts).
type Conflict struct {
	State   int
	Term    string
	Kind    string // "shift/reduce" or "reduce/reduce"
	Kept    string
	Dropped []string
}

func (c Conflict) String() string {
	return fmt.Sprintf("state %d on %s: %s conflict, kept %s over %v",
		c.State, c.Term, c.Kind, c.Kept, c.Dropped)
}

// SemBlock records a (state, terminal) whose reduction candidates all carry
// semantic qualifications, so the input cannot be guaranteed to satisfy any
// of them (§3.2). The grammar author resolves it by adding an unqualified
// alternative or bridge production (§6.3 converts such cases to syntax).
type SemBlock struct {
	State int
	Term  string
	Prods []int
}

// BuildStats summarizes construction work and table size; §8 of the paper
// reports the state count, and §5.1.3 the table growth from reverse
// operators.
type BuildStats struct {
	States        int
	ActionEntries int // non-error ACTION entries
	GotoEntries   int
	ClosureOps    int // item-processing work performed during construction
}

// Tables is the constructed parser: the ACTION/GOTO tables driving the
// instruction pattern matcher, plus the diagnostics gathered during
// construction.
type Tables struct {
	Grammar  *cgram.Grammar
	Terms    []string // terminal vocabulary; the end marker has id len(Terms)
	Nonterms []string

	Action  [][]Action // [state][termID], termID len(Terms) is the end marker
	Goto    [][]int32  // [state][ntID]; -1 means none
	Choices [][]int32  // production index lists for ActChoice entries

	Conflicts []Conflict
	SemBlocks []SemBlock
	Stats     BuildStats

	termID map[string]int
	ntID   map[string]int

	// packed is the comb-vector form, built once by Build/Decode and
	// immutable afterwards; the matcher's hot loop drives it.
	packed *Packed
}

// Packed returns the comb-vector form of the tables, lookup-equivalent to
// the dense form for every (state, symbol) pair.
func (t *Tables) Packed() *Packed { return t.packed }

// End returns the terminal id of the end-of-tree marker.
func (t *Tables) End() int { return len(t.Terms) }

// TermID returns the id of a terminal symbol.
func (t *Tables) TermID(term string) (int, bool) {
	id, ok := t.termID[term]
	return id, ok
}

// NontermID returns the id of a nonterminal symbol.
func (t *Tables) NontermID(nt string) (int, bool) {
	id, ok := t.ntID[nt]
	return id, ok
}

// Lookup returns the action for a state on a terminal id.
func (t *Tables) Lookup(state, term int) Action { return t.Action[state][term] }

// GotoState returns the successor of state under a nonterminal id, or -1.
func (t *Tables) GotoState(state, nt int) int { return int(t.Goto[state][nt]) }

// ChoiceProds returns the candidate productions of a choice entry, ordered
// with semantically qualified candidates first.
func (t *Tables) ChoiceProds(a Action) []int32 {
	if a.Kind != ActChoice {
		return nil
	}
	return t.Choices[a.Arg]
}

// Size reports table size measures used by the E4 experiment and the §3.2
// report: the count of useful entries and the measured byte sizes of both
// encodings (not the historical ActionEntries*5+GotoEntries*4 estimate,
// which drifted from what either representation actually stores).
type Size struct {
	States        int
	ActionEntries int // non-error ACTION entries
	GotoEntries   int // non-empty GOTO entries
	Bytes         int // measured bytes of the dense matrices
	PackedBytes   int // measured bytes of the comb-vector arrays
}

// Size returns the table size. Bytes counts the dense representation as
// resident: the full states x (terminals+1) Action matrix at the in-memory
// entry size, the full states x nonterminals int32 GOTO matrix, and the
// choice lists. PackedBytes counts every int32 of the packed arrays.
func (t *Tables) Size() Size {
	s := Size{States: len(t.Action)}
	for _, row := range t.Action {
		for _, a := range row {
			if a.Kind != ActErr {
				s.ActionEntries++
			}
		}
	}
	for _, row := range t.Goto {
		for _, g := range row {
			if g >= 0 {
				s.GotoEntries++
			}
		}
	}
	nTerms := len(t.Terms) + 1 // including the end marker column
	s.Bytes = len(t.Action)*nTerms*int(unsafe.Sizeof(Action{})) +
		len(t.Goto)*len(t.Nonterms)*4
	for _, c := range t.Choices {
		s.Bytes += 4 * len(c)
	}
	if t.packed != nil {
		s.PackedBytes = t.packed.Bytes()
	}
	return s
}

// Options configures table construction.
type Options struct {
	// Naive selects the first-cut construction algorithm: closures computed
	// by scanning the whole production list and states looked up by linear
	// comparison of full item sets. It is the "over two hours of VAX CPU
	// time" configuration of §7; the default is the improved constructor
	// that brought the time to ten minutes (§9).
	Naive bool
}

// Build constructs SLR(1)-style tables for a machine description grammar.
// Disambiguation follows §3.2; a chain-rule loop is a fatal error.
func Build(g *cgram.Grammar, opt Options) (*Tables, error) {
	if err := checkChainLoops(g); err != nil {
		return nil, err
	}
	b, err := newBuilder(g, opt)
	if err != nil {
		return nil, err
	}
	b.buildStates()
	b.fillTables()
	b.tables.packed = b.tables.Pack()
	return b.tables, nil
}
