package tablegen

import (
	"fmt"
	"sort"

	"ggcg/internal/cgram"
)

// sym is a grammar symbol reference: terminal or nonterminal id.
type sym struct {
	term bool
	id   int32
}

// iprod is a production with interned symbols. Production 0 is the
// augmented rule start' -> start.
type iprod struct {
	lhs int32
	rhs []sym
}

// item is an LR(0) item: production index and dot position.
type item uint32

func mkItem(prod, dot int) item { return item(prod)<<8 | item(dot) }
func (it item) prod() int       { return int(it >> 8) }
func (it item) dot() int        { return int(it & 0xff) }

type state struct {
	kernel  []item
	closure []item
	// shift/goto successors, keyed by symbol.
	termSucc map[int32]int32
	ntSucc   map[int32]int32
}

type builder struct {
	g      *cgram.Grammar
	opt    Options
	tables *Tables

	prods      []iprod
	prodsByLHS [][]int32 // nonterminal id -> production indices

	first  [][]bool // [nt][term]
	follow [][]bool // [nt][term+end]

	states      []*state
	kernelIndex map[string]int32

	choiceIndex map[string]int32
}

func newBuilder(g *cgram.Grammar, opt Options) (*builder, error) {
	b := &builder{g: g, opt: opt}
	t := &Tables{
		Grammar:  g,
		Terms:    g.Terminals(),
		Nonterms: append([]string{}, g.Nonterminals()...),
		termID:   make(map[string]int),
		ntID:     make(map[string]int),
	}
	// The augmented start nonterminal gets the last id.
	t.Nonterms = append(t.Nonterms, g.Start+"'")
	for i, s := range t.Terms {
		t.termID[s] = i
	}
	for i, s := range t.Nonterms {
		t.ntID[s] = i
	}
	b.tables = t

	// Intern productions; index 0 is the augmented rule.
	startNT := int32(t.ntID[g.Start])
	augNT := int32(len(t.Nonterms) - 1)
	b.prods = make([]iprod, 0, len(g.Prods)+1)
	b.prods = append(b.prods, iprod{lhs: augNT, rhs: []sym{{term: false, id: startNT}}})
	for _, p := range g.Prods {
		ip := iprod{lhs: int32(t.ntID[p.LHS])}
		for _, s := range p.RHS {
			if cgram.IsTerminal(s) {
				ip.rhs = append(ip.rhs, sym{term: true, id: int32(t.termID[s])})
			} else {
				ip.rhs = append(ip.rhs, sym{term: false, id: int32(t.ntID[s])})
			}
		}
		if len(ip.rhs) > 250 {
			return nil, fmt.Errorf("tablegen: production %d too long", p.Index)
		}
		b.prods = append(b.prods, ip)
	}
	if len(b.prods) >= 1<<24 {
		return nil, fmt.Errorf("tablegen: too many productions")
	}

	b.prodsByLHS = make([][]int32, len(t.Nonterms))
	for i, p := range b.prods {
		b.prodsByLHS[p.lhs] = append(b.prodsByLHS[p.lhs], int32(i))
	}
	b.computeFirst()
	b.computeFollow()
	b.kernelIndex = make(map[string]int32)
	b.choiceIndex = make(map[string]int32)
	return b, nil
}

// computeFirst computes FIRST sets for nonterminals. Machine description
// grammars have no empty productions, so no nullability handling is needed.
func (b *builder) computeFirst() {
	nNT, nT := len(b.tables.Nonterms), len(b.tables.Terms)
	b.first = make([][]bool, nNT)
	for i := range b.first {
		b.first[i] = make([]bool, nT)
	}
	for changed := true; changed; {
		changed = false
		for _, p := range b.prods {
			head := p.rhs[0]
			if head.term {
				if !b.first[p.lhs][head.id] {
					b.first[p.lhs][head.id] = true
					changed = true
				}
				continue
			}
			for t, in := range b.first[head.id] {
				if in && !b.first[p.lhs][t] {
					b.first[p.lhs][t] = true
					changed = true
				}
			}
		}
	}
}

// computeFollow computes SLR FOLLOW sets; index len(Terms) is the end
// marker.
func (b *builder) computeFollow() {
	nNT, nT := len(b.tables.Nonterms), len(b.tables.Terms)
	b.follow = make([][]bool, nNT)
	for i := range b.follow {
		b.follow[i] = make([]bool, nT+1)
	}
	aug := len(b.tables.Nonterms) - 1
	b.follow[aug][nT] = true
	for changed := true; changed; {
		changed = false
		for _, p := range b.prods {
			for i, s := range p.rhs {
				if s.term {
					continue
				}
				if i+1 < len(p.rhs) {
					next := p.rhs[i+1]
					if next.term {
						if !b.follow[s.id][next.id] {
							b.follow[s.id][next.id] = true
							changed = true
						}
					} else {
						for t, in := range b.first[next.id] {
							if in && !b.follow[s.id][t] {
								b.follow[s.id][t] = true
								changed = true
							}
						}
					}
				} else {
					for t, in := range b.follow[p.lhs] {
						if in && !b.follow[s.id][t] {
							b.follow[s.id][t] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// closure computes the LR(0) closure of a kernel. The improved constructor
// expands nonterminals through the by-LHS production index; the naive one
// rescans the whole production list for every pending item, which is the
// dominant cost in the "two hours of VAX CPU time" configuration (§7).
func (b *builder) closure(kernel []item) []item {
	seen := make(map[item]bool, len(kernel)*4)
	out := make([]item, 0, len(kernel)*4)
	var work []item
	for _, it := range kernel {
		seen[it] = true
		out = append(out, it)
		work = append(work, it)
	}
	addProd := func(p int32) {
		it := mkItem(int(p), 0)
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
			work = append(work, it)
		}
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		b.tables.Stats.ClosureOps++
		p := b.prods[it.prod()]
		if it.dot() >= len(p.rhs) {
			continue
		}
		next := p.rhs[it.dot()]
		if next.term {
			continue
		}
		if b.opt.Naive {
			for i, q := range b.prods {
				b.tables.Stats.ClosureOps++
				if q.lhs == next.id {
					addProd(int32(i))
				}
			}
		} else {
			for _, i := range b.prodsByLHS[next.id] {
				addProd(i)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func kernelKey(kernel []item) string {
	buf := make([]byte, 0, len(kernel)*4)
	for _, it := range kernel {
		buf = append(buf, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(buf)
}

// findOrAddState returns the state with the given kernel, creating it if
// new. The improved constructor hashes kernels; the naive first-cut one
// recomputes the candidate's full closure and compares it linearly against
// every existing state's closure — the dominant cost of the configuration
// that took over two hours of VAX CPU time (§7).
func (b *builder) findOrAddState(kernel []item) (int32, bool) {
	if b.opt.Naive {
		closure := b.closure(kernel)
		for i, s := range b.states {
			b.tables.Stats.ClosureOps += len(s.closure)
			if itemsEqual(s.closure, closure) {
				return int32(i), false
			}
		}
		st := &state{
			kernel:   kernel,
			closure:  closure,
			termSucc: make(map[int32]int32),
			ntSucc:   make(map[int32]int32),
		}
		b.states = append(b.states, st)
		return int32(len(b.states) - 1), true
	}
	if i, ok := b.kernelIndex[kernelKey(kernel)]; ok {
		return i, false
	}
	s := &state{
		kernel:   kernel,
		closure:  b.closure(kernel),
		termSucc: make(map[int32]int32),
		ntSucc:   make(map[int32]int32),
	}
	b.states = append(b.states, s)
	id := int32(len(b.states) - 1)
	b.kernelIndex[kernelKey(kernel)] = id
	return id, true
}

func itemsEqual(a, b []item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildStates runs the canonical LR(0) collection construction.
func (b *builder) buildStates() {
	start, _ := b.findOrAddState([]item{mkItem(0, 0)})
	work := []int32{start}
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		s := b.states[id]
		// Group closure items by the symbol after the dot.
		type key struct {
			term bool
			id   int32
		}
		succ := make(map[key][]item)
		var order []key
		for _, it := range s.closure {
			p := b.prods[it.prod()]
			if it.dot() >= len(p.rhs) {
				continue
			}
			next := p.rhs[it.dot()]
			k := key{next.term, next.id}
			if _, ok := succ[k]; !ok {
				order = append(order, k)
			}
			succ[k] = append(succ[k], mkItem(it.prod(), it.dot()+1))
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].term != order[j].term {
				return order[i].term
			}
			return order[i].id < order[j].id
		})
		for _, k := range order {
			kernel := succ[k]
			sort.Slice(kernel, func(i, j int) bool { return kernel[i] < kernel[j] })
			to, isNew := b.findOrAddState(kernel)
			if k.term {
				s.termSucc[k.id] = to
			} else {
				s.ntSucc[k.id] = to
			}
			if isNew {
				work = append(work, to)
			}
		}
	}
	b.tables.Stats.States = len(b.states)
}

// fillTables converts the automaton into ACTION/GOTO tables, applying the
// paper's disambiguation rules and recording diagnostics.
func (b *builder) fillTables() {
	t := b.tables
	nT, nNT := len(t.Terms), len(t.Nonterms)
	end := nT
	t.Action = make([][]Action, len(b.states))
	t.Goto = make([][]int32, len(b.states))
	for si, s := range b.states {
		arow := make([]Action, nT+1)
		grow := make([]int32, nNT)
		for i := range grow {
			grow[i] = -1
		}
		for ntid, to := range s.ntSucc {
			grow[ntid] = to
		}
		// Gather reduce candidates per lookahead.
		cands := make(map[int][]int32)
		accept := false
		for _, it := range s.closure {
			p := b.prods[it.prod()]
			if it.dot() < len(p.rhs) {
				continue
			}
			if it.prod() == 0 {
				accept = true
				continue
			}
			for term, in := range b.follow[p.lhs] {
				if in {
					cands[term] = append(cands[term], int32(it.prod()))
				}
			}
		}
		for term := 0; term <= nT; term++ {
			var shiftTo int32 = -1
			if term < nT {
				if to, ok := s.termSucc[int32(term)]; ok {
					shiftTo = to
				}
			}
			reduces := cands[term]
			switch {
			case shiftTo >= 0 && len(reduces) > 0:
				// Shift preference (maximal munch).
				arow[term] = Action{Kind: ActShift, Arg: shiftTo}
				t.Conflicts = append(t.Conflicts, Conflict{
					State: si, Term: b.termName(term), Kind: "shift/reduce",
					Kept: "shift", Dropped: b.prodNames(reduces),
				})
			case shiftTo >= 0:
				arow[term] = Action{Kind: ActShift, Arg: shiftTo}
			case len(reduces) > 0:
				arow[term] = b.resolveReduce(si, term, reduces)
			case term == end && accept:
				arow[term] = Action{Kind: ActAccept}
			}
		}
		if accept && arow[end].Kind == ActErr {
			arow[end] = Action{Kind: ActAccept}
		}
		t.Action[si] = arow
		t.Goto[si] = grow
	}
	sz := t.Size()
	t.Stats.ActionEntries = sz.ActionEntries
	t.Stats.GotoEntries = sz.GotoEntries
}

// resolveReduce applies the longest-rule rule to a reduce/reduce set and
// builds a dynamic choice for surviving ties.
func (b *builder) resolveReduce(si, term int, reduces []int32) Action {
	t := b.tables
	if len(reduces) == 1 {
		return Action{Kind: ActReduce, Arg: reduces[0]}
	}
	sort.Slice(reduces, func(i, j int) bool { return reduces[i] < reduces[j] })
	reduces = dedup(reduces)
	maxLen := 0
	for _, p := range reduces {
		if n := len(b.prods[p].rhs); n > maxLen {
			maxLen = n
		}
	}
	var longest, dropped []int32
	for _, p := range reduces {
		if len(b.prods[p].rhs) == maxLen {
			longest = append(longest, p)
		} else {
			dropped = append(dropped, p)
		}
	}
	if len(longest) == 1 {
		if len(dropped) > 0 {
			t.Conflicts = append(t.Conflicts, Conflict{
				State: si, Term: b.termName(term), Kind: "reduce/reduce",
				Kept: b.prodName(longest[0]), Dropped: b.prodNames(dropped),
			})
		}
		return Action{Kind: ActReduce, Arg: longest[0]}
	}
	// Two or more longest rules: the matcher chooses dynamically using
	// semantic attributes. Qualified candidates are tried first, in
	// grammar order; the first unqualified candidate is the default.
	var qualified, unqualified []int32
	for _, p := range longest {
		if b.g.Prods[p-1].Pred != "" {
			qualified = append(qualified, p)
		} else {
			unqualified = append(unqualified, p)
		}
	}
	ordered := append(qualified, unqualified...)
	if len(unqualified) == 0 {
		t.SemBlocks = append(t.SemBlocks, SemBlock{
			State: si, Term: b.termName(term), Prods: toInts(ordered),
		})
	}
	t.Conflicts = append(t.Conflicts, Conflict{
		State: si, Term: b.termName(term), Kind: "reduce/reduce",
		Kept: "dynamic choice " + fmt.Sprint(toInts(ordered)), Dropped: b.prodNames(dropped),
	})
	return Action{Kind: ActChoice, Arg: b.internChoice(ordered)}
}

func (b *builder) internChoice(prods []int32) int32 {
	buf := make([]byte, 0, len(prods)*4)
	for _, p := range prods {
		buf = append(buf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	key := string(buf)
	if i, ok := b.choiceIndex[key]; ok {
		return i
	}
	b.tables.Choices = append(b.tables.Choices, prods)
	i := int32(len(b.tables.Choices) - 1)
	b.choiceIndex[key] = i
	return i
}

func dedup(v []int32) []int32 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func toInts(v []int32) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = int(x)
	}
	return out
}

func (b *builder) termName(term int) string {
	if term == len(b.tables.Terms) {
		return "$end"
	}
	return b.tables.Terms[term]
}

func (b *builder) prodName(p int32) string { return b.g.Prods[p-1].String() }

func (b *builder) prodNames(ps []int32) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = b.prodName(p)
	}
	return out
}
