package tablegen

import (
	"encoding/gob"
	"fmt"
	"io"

	"ggcg/internal/cgram"
)

// EncodingVersion identifies the wire format Encode writes. Version 2
// ships the comb-vector (packed) form of the tables; the dense form is
// reconstructed from it at Decode time, which is cheap and — because the
// packed form is exactly lookup-equivalent — lossless. Version 1 (the
// unversioned dense gob of earlier revisions) is rejected with a clear
// error so stale table files fail fast instead of mis-decoding.
const EncodingVersion = 2

// wireTables is the serialized form of Tables. The grammar travels as its
// textual rendering so the two sides agree on production indices and symbol
// numbering, which are derived deterministically from the text; the tables
// travel in comb-vector form.
type wireTables struct {
	Version     int
	GrammarText string
	Start       string
	Packed      Packed
	Conflicts   []Conflict
	SemBlocks   []SemBlock
	Stats       BuildStats
}

// Encode writes the tables in a binary form Decode can read, so that the
// static table-construction step can be run once per target machine and
// its output shipped with the code generator (§3). The packed form is what
// goes on the wire.
func (t *Tables) Encode(w io.Writer) error {
	wt := wireTables{
		Version:     EncodingVersion,
		GrammarText: t.Grammar.String(),
		Start:       t.Grammar.Start,
		Packed:      *t.packed,
		Conflicts:   t.Conflicts,
		SemBlocks:   t.SemBlocks,
		Stats:       t.Stats,
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// Decode reads tables written by Encode, rebuilding the dense matrices
// from the packed form.
func Decode(r io.Reader) (*Tables, error) {
	var wt wireTables
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("tablegen: decode: %v", err)
	}
	if wt.Version != EncodingVersion {
		return nil, fmt.Errorf("tablegen: decode: encoded tables are version %d, need version %d; re-encode with ggtables -encode",
			wt.Version, EncodingVersion)
	}
	g, err := cgram.Parse(wt.GrammarText)
	if err != nil {
		return nil, fmt.Errorf("tablegen: decode grammar: %v", err)
	}
	p := &wt.Packed
	t := &Tables{
		Grammar:   g,
		Terms:     g.Terminals(),
		Nonterms:  append(append([]string{}, g.Nonterminals()...), g.Start+"'"),
		Choices:   p.Choices,
		Conflicts: wt.Conflicts,
		SemBlocks: wt.SemBlocks,
		Stats:     wt.Stats,
		termID:    make(map[string]int),
		ntID:      make(map[string]int),
		packed:    p,
	}
	for i, s := range t.Terms {
		t.termID[s] = i
	}
	for i, s := range t.Nonterms {
		t.ntID[s] = i
	}
	if int(p.NumTerms) != len(t.Terms) {
		return nil, fmt.Errorf("tablegen: decode: table width %d does not match %d terminals",
			p.NumTerms, len(t.Terms))
	}
	if int(p.NumNonterms) != len(t.Nonterms) {
		return nil, fmt.Errorf("tablegen: decode: %d goto columns do not match %d nonterminals",
			p.NumNonterms, len(t.Nonterms))
	}
	if len(p.ProdLHS) != len(g.Prods)+1 {
		return nil, fmt.Errorf("tablegen: decode: %d productions do not match grammar's %d",
			len(p.ProdLHS)-1, len(g.Prods))
	}
	if len(p.Base) != int(p.NumStates) || len(p.Default) != int(p.NumStates) ||
		len(p.GBase) != int(p.NumNonterms) || len(p.GDefault) != int(p.NumNonterms) ||
		len(p.Next) != len(p.Check) || len(p.GNext) != len(p.GCheck) {
		return nil, fmt.Errorf("tablegen: decode: packed array sizes are inconsistent")
	}
	// Rebuild the dense matrices by exhaustive packed lookup; exact
	// equivalence of the two forms makes this a lossless inverse of Pack.
	t.Action = make([][]Action, p.NumStates)
	t.Goto = make([][]int32, p.NumStates)
	for s := int32(0); s < p.NumStates; s++ {
		arow := make([]Action, p.NumTerms+1)
		for term := int32(0); term <= p.NumTerms; term++ {
			arow[term] = UnpackAction(p.LookupCode(s, term))
		}
		grow := make([]int32, p.NumNonterms)
		for nt := int32(0); nt < p.NumNonterms; nt++ {
			grow[nt] = p.GotoState(s, nt)
		}
		t.Action[s] = arow
		t.Goto[s] = grow
	}
	return t, nil
}
