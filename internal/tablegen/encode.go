package tablegen

import (
	"encoding/gob"
	"fmt"
	"io"

	"ggcg/internal/cgram"
)

// wireTables is the serialized form of Tables. The grammar travels as its
// textual rendering so the two sides agree on production indices and symbol
// numbering, which are derived deterministically from the text.
type wireTables struct {
	GrammarText string
	Start       string
	Action      [][]Action
	Goto        [][]int32
	Choices     [][]int32
	Conflicts   []Conflict
	SemBlocks   []SemBlock
	Stats       BuildStats
}

// Encode writes the tables in a binary form Decode can read, so that the
// static table-construction step can be run once per target machine and
// its output shipped with the code generator (§3).
func (t *Tables) Encode(w io.Writer) error {
	wt := wireTables{
		GrammarText: t.Grammar.String(),
		Start:       t.Grammar.Start,
		Action:      t.Action,
		Goto:        t.Goto,
		Choices:     t.Choices,
		Conflicts:   t.Conflicts,
		SemBlocks:   t.SemBlocks,
		Stats:       t.Stats,
	}
	return gob.NewEncoder(w).Encode(&wt)
}

// Decode reads tables written by Encode.
func Decode(r io.Reader) (*Tables, error) {
	var wt wireTables
	if err := gob.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("tablegen: decode: %v", err)
	}
	g, err := cgram.Parse(wt.GrammarText)
	if err != nil {
		return nil, fmt.Errorf("tablegen: decode grammar: %v", err)
	}
	t := &Tables{
		Grammar:   g,
		Terms:     g.Terminals(),
		Nonterms:  append(append([]string{}, g.Nonterminals()...), g.Start+"'"),
		Action:    wt.Action,
		Goto:      wt.Goto,
		Choices:   wt.Choices,
		Conflicts: wt.Conflicts,
		SemBlocks: wt.SemBlocks,
		Stats:     wt.Stats,
		termID:    make(map[string]int),
		ntID:      make(map[string]int),
	}
	for i, s := range t.Terms {
		t.termID[s] = i
	}
	for i, s := range t.Nonterms {
		t.ntID[s] = i
	}
	if len(t.Action) > 0 && len(t.Action[0]) != len(t.Terms)+1 {
		return nil, fmt.Errorf("tablegen: decode: table width %d does not match %d terminals",
			len(t.Action[0]), len(t.Terms))
	}
	return t, nil
}
