package tablegen

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ggcg/internal/cgram"
)

// runParse drives the tables over a terminal string the way the matcher
// does, resolving dynamic choices by their default (last) candidate. It
// returns the production indices reduced, in order, and whether the input
// was accepted.
func runParse(t *Tables, terms []string) (reduces []int, accepted bool) {
	stack := []int32{0}
	ids := make([]int, 0, len(terms)+1)
	for _, s := range terms {
		id, ok := t.TermID(s)
		if !ok {
			return reduces, false
		}
		ids = append(ids, id)
	}
	ids = append(ids, t.End())
	for _, id := range ids {
		for {
			act := t.Lookup(int(stack[len(stack)-1]), id)
			switch act.Kind {
			case ActShift:
				stack = append(stack, act.Arg)
			case ActReduce, ActChoice:
				p := act.Arg
				if act.Kind == ActChoice {
					c := t.ChoiceProds(act)
					p = c[len(c)-1]
				}
				prod := t.Grammar.Prods[p-1]
				stack = stack[:len(stack)-len(prod.RHS)]
				lhs, _ := t.NontermID(prod.LHS)
				to := t.GotoState(int(stack[len(stack)-1]), lhs)
				if to < 0 {
					return reduces, false
				}
				stack = append(stack, int32(to))
				reduces = append(reduces, int(p))
				continue
			case ActAccept:
				return reduces, true
			default:
				return reduces, false
			}
			break
		}
	}
	return reduces, false
}

// toyArity is an arity oracle for the abstract test grammars: Op2 is a
// binary operator, Op1 unary, everything else a leaf.
func toyArity(term string) (int, bool) {
	switch term {
	case "Op2":
		return 2, true
	case "Op1":
		return 1, true
	}
	return 0, true
}

const addrGrammar = `
%start stmt
stmt   -> Assign.l lval.l rval.l ; action=mov
lval.l -> Name.l
rval.l -> reg.l
rval.l -> Const.l
rval.l -> Indir.l addr
reg.l  -> Plus.l rval.l rval.l ; action=add
reg.l  -> Dreg.l
addr   -> Plus.l Const.l reg.l ; action=disp
addr   -> reg.l
`

func build(t *testing.T, src string, opt Options) *Tables {
	t.Helper()
	g, err := cgram.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func prodIndex(t *testing.T, g *cgram.Grammar, action string) int {
	t.Helper()
	for _, p := range g.Prods {
		if p.Action == action {
			return p.Index
		}
	}
	t.Fatalf("no production with action %q", action)
	return 0
}

func TestSimpleParseAccepts(t *testing.T) {
	tb := build(t, addrGrammar, Options{})
	reduces, ok := runParse(tb, strings.Fields("Assign.l Name.l Const.l"))
	if !ok {
		t.Fatal("simple assignment not accepted")
	}
	if len(reduces) == 0 || reduces[len(reduces)-1] != prodIndex(t, tb.Grammar, "mov") {
		t.Errorf("last reduction = %v, want the mov production", reduces)
	}
}

func TestMaximalMunchPrefersAddressingMode(t *testing.T) {
	tb := build(t, addrGrammar, Options{})
	// Assign a, *(4 + fp): the Plus must be implemented by the addressing
	// hardware (disp), not by an add instruction, because shift is
	// preferred over reduce (§3.2).
	reduces, ok := runParse(tb, strings.Fields("Assign.l Name.l Indir.l Plus.l Const.l Dreg.l"))
	if !ok {
		t.Fatal("input not accepted")
	}
	disp, add := prodIndex(t, tb.Grammar, "disp"), prodIndex(t, tb.Grammar, "add")
	var sawDisp, sawAdd bool
	for _, p := range reduces {
		sawDisp = sawDisp || p == disp
		sawAdd = sawAdd || p == add
	}
	if !sawDisp || sawAdd {
		t.Errorf("reduces = %v: want disp (%d) chosen, add (%d) avoided", reduces, disp, add)
	}
	// The shift preference must have been recorded as a conflict.
	var found bool
	for _, c := range tb.Conflicts {
		if c.Kind == "shift/reduce" {
			found = true
		}
	}
	if !found {
		t.Error("no shift/reduce conflict recorded for the ambiguous grammar")
	}
}

func TestGeneralAddStillReachable(t *testing.T) {
	tb := build(t, addrGrammar, Options{})
	// Assign a, fp+fp: no addressing mode matches, the add instruction must.
	reduces, ok := runParse(tb, strings.Fields("Assign.l Name.l Plus.l Dreg.l Dreg.l"))
	if !ok {
		t.Fatal("input not accepted")
	}
	add := prodIndex(t, tb.Grammar, "add")
	var sawAdd bool
	for _, p := range reduces {
		sawAdd = sawAdd || p == add
	}
	if !sawAdd {
		t.Errorf("reduces = %v: want add (%d)", reduces, add)
	}
}

const longestGrammar = `
%start s
s -> x ; action=viaX
s -> A y ; action=viaY
x -> A B C ; action=big
y -> B C ; action=small
`

func TestLongestRuleWinsReduceReduce(t *testing.T) {
	tb := build(t, longestGrammar, Options{})
	reduces, ok := runParse(tb, strings.Fields("A B C"))
	if !ok {
		t.Fatal("input not accepted")
	}
	big := prodIndex(t, tb.Grammar, "big")
	if reduces[0] != big {
		t.Errorf("first reduction = %d, want the longest rule %d", reduces[0], big)
	}
	var rr bool
	for _, c := range tb.Conflicts {
		if c.Kind == "reduce/reduce" {
			rr = true
		}
	}
	if !rr {
		t.Error("reduce/reduce conflict not recorded")
	}
}

const tieGrammar = `
%start s
s -> x ; action=sx
s -> y ; action=sy
x -> A B ; action=px pred=wantX
y -> A B ; action=py
`

func TestEqualLengthTieBecomesDynamicChoice(t *testing.T) {
	tb := build(t, tieGrammar, Options{})
	px, py := prodIndex(t, tb.Grammar, "px"), prodIndex(t, tb.Grammar, "py")
	var choice []int32
	for _, row := range tb.Action {
		for _, a := range row {
			if a.Kind == ActChoice {
				choice = tb.ChoiceProds(a)
			}
		}
	}
	if choice == nil {
		t.Fatal("no dynamic choice entry constructed")
	}
	if int(choice[0]) != px || int(choice[len(choice)-1]) != py {
		t.Errorf("choice = %v: want qualified %d first, unqualified %d as default", choice, px, py)
	}
	if len(tb.SemBlocks) != 0 {
		t.Errorf("unexpected semantic blocks: %v", tb.SemBlocks)
	}
	// The default candidate drives the parse to acceptance.
	if _, ok := runParse(tb, strings.Fields("A B")); !ok {
		t.Error("tie grammar input not accepted")
	}
}

func TestSemanticBlockDetected(t *testing.T) {
	src := `
%start s
s -> x ; action=sx
s -> y ; action=sy
x -> A B ; action=px pred=p1
y -> A B ; action=py pred=p2
`
	tb := build(t, src, Options{})
	if len(tb.SemBlocks) == 0 {
		t.Fatal("all-qualified tie must be reported as a semantic block")
	}
	sb := tb.SemBlocks[0]
	if len(sb.Prods) != 2 {
		t.Errorf("semantic block candidates = %v", sb.Prods)
	}
}

func TestChainLoopRejected(t *testing.T) {
	src := `
%start s
s -> A a
a -> b ; action=ab
b -> a ; action=ba
a -> B
b -> C
`
	g := cgram.MustParse(src)
	if _, err := Build(g, Options{}); err == nil {
		t.Fatal("chain-rule loop accepted")
	} else if !strings.Contains(err.Error(), "chain rule loop") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestChainDAGAccepted(t *testing.T) {
	// Widening-style chains form a DAG and must be accepted.
	src := `
%start s
s -> A c
c -> b ; action=widen_bc
b -> a ; action=widen_ab
a -> B
b -> C
c -> D
`
	g := cgram.MustParse(src)
	if _, err := Build(g, Options{}); err != nil {
		t.Fatalf("DAG chains rejected: %v", err)
	}
}

func TestSyntacticBlockDetectedAndBridged(t *testing.T) {
	// In the blocked grammar a long production commits to a shared left
	// context that cannot handle every continuation: Op2 e B blocks,
	// because only Op2 e A is described (§6.2.2).
	blocked := `
%start s
s -> e ; action=top
e -> A
e -> B
e -> Op2 e A ; action=ea
`
	tb := build(t, blocked, Options{})
	blocks, complete := CheckBlocks(tb, toyArity, 5, 100000)
	if !complete {
		t.Fatal("exploration should be exhaustive for this grammar")
	}
	if len(blocks) == 0 {
		t.Fatal("no syntactic block found for Op2 x B")
	}
	// A bridge production handles the more general continuation of the
	// shared prefix and repairs the block.
	bridged := blocked + `
e -> Op2 e e ; action=bridge
`
	tb2 := build(t, bridged, Options{})
	blocks2, complete2 := CheckBlocks(tb2, toyArity, 5, 100000)
	if !complete2 {
		t.Fatal("bridged exploration should be exhaustive")
	}
	if len(blocks2) != 0 {
		t.Errorf("bridged grammar still blocks: %v", blocks2)
	}
}

func TestCheckBlocksHonorsConfigCap(t *testing.T) {
	tb := build(t, addrGrammar, Options{})
	_, complete := CheckBlocks(tb, func(term string) (int, bool) {
		switch term {
		case "Assign.l", "Plus.l":
			return 2, true
		case "Indir.l":
			return 1, true
		}
		return 0, true
	}, 50, 3)
	if complete {
		t.Error("tiny config budget should not be exhaustive")
	}
}

func TestNaiveAndImprovedAgree(t *testing.T) {
	for _, src := range []string{addrGrammar, longestGrammar, tieGrammar} {
		fast := build(t, src, Options{})
		slow := build(t, src, Options{Naive: true})
		if !reflect.DeepEqual(fast.Action, slow.Action) {
			t.Errorf("ACTION tables differ between naive and improved for %q...", src[:20])
		}
		if !reflect.DeepEqual(fast.Goto, slow.Goto) {
			t.Errorf("GOTO tables differ between naive and improved")
		}
		if slow.Stats.ClosureOps <= fast.Stats.ClosureOps {
			t.Errorf("naive construction did %d ops, improved %d; naive should work harder",
				slow.Stats.ClosureOps, fast.Stats.ClosureOps)
		}
	}
}

func TestStatsAndSize(t *testing.T) {
	tb := build(t, addrGrammar, Options{})
	if tb.Stats.States < 5 {
		t.Errorf("states = %d, implausibly small", tb.Stats.States)
	}
	sz := tb.Size()
	if sz.ActionEntries == 0 || sz.GotoEntries == 0 || sz.Bytes == 0 {
		t.Errorf("size = %+v", sz)
	}
	if sz.States != tb.Stats.States {
		t.Errorf("size states %d != stats states %d", sz.States, tb.Stats.States)
	}
}

func TestSymbolLookups(t *testing.T) {
	tb := build(t, addrGrammar, Options{})
	if _, ok := tb.TermID("Plus.l"); !ok {
		t.Error("Plus.l not found")
	}
	if _, ok := tb.TermID("nope"); ok {
		t.Error("bogus terminal found")
	}
	if _, ok := tb.NontermID("rval.l"); !ok {
		t.Error("rval.l not found")
	}
	if _, ok := tb.NontermID("stmt'"); !ok {
		t.Error("augmented start nonterminal not registered")
	}
	if tb.End() != len(tb.Terms) {
		t.Error("End() is not the last terminal id")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tb := build(t, addrGrammar, Options{})
	var buf bytes.Buffer
	if err := tb.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	tb2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb.Action, tb2.Action) || !reflect.DeepEqual(tb.Goto, tb2.Goto) {
		t.Error("tables changed across encode/decode")
	}
	// The decoded tables still drive a parse.
	reduces, ok := runParse(tb2, strings.Fields("Assign.l Name.l Const.l"))
	if !ok || len(reduces) == 0 {
		t.Error("decoded tables cannot parse")
	}
	// Symbol ids must agree.
	for _, term := range tb.Terms {
		a, _ := tb.TermID(term)
		b, _ := tb2.TermID(term)
		if a != b {
			t.Errorf("terminal %q id changed: %d vs %d", term, a, b)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("Decode accepted garbage")
	}
}

func TestActionKindString(t *testing.T) {
	for k, want := range map[ActionKind]string{
		ActErr: "error", ActShift: "shift", ActReduce: "reduce", ActAccept: "accept", ActChoice: "choice",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestConflictString(t *testing.T) {
	c := Conflict{State: 3, Term: "Plus.l", Kind: "shift/reduce", Kept: "shift", Dropped: []string{"p"}}
	s := c.String()
	if !strings.Contains(s, "state 3") || !strings.Contains(s, "Plus.l") {
		t.Errorf("Conflict.String() = %q", s)
	}
}
