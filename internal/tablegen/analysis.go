package tablegen

import (
	"fmt"
	"strings"

	"ggcg/internal/cgram"
)

// checkChainLoops rejects grammars whose nonterminal chain rules can be
// cyclically reduced; the table generator must ensure the pattern matcher
// cannot get into such a looping configuration (§3.2).
func checkChainLoops(g *cgram.Grammar) error {
	edges := make(map[string][]string)
	for _, p := range g.Prods {
		if p.IsChain() {
			edges[p.RHS[0]] = append(edges[p.RHS[0]], p.LHS)
		}
	}
	const (
		unvisited = iota
		onStack
		done
	)
	color := make(map[string]int)
	var stack []string
	var cycle []string
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = onStack
		stack = append(stack, n)
		for _, m := range edges[n] {
			switch color[m] {
			case onStack:
				i := len(stack) - 1
				for i >= 0 && stack[i] != m {
					i--
				}
				cycle = append(append([]string{}, stack[i:]...), m)
				return true
			case unvisited:
				if visit(m) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = done
		return false
	}
	for n := range edges {
		if color[n] == unvisited && visit(n) {
			return fmt.Errorf("tablegen: chain rule loop: %s", strings.Join(cycle, " -> "))
		}
	}
	return nil
}

// Block records a syntactic block: a parser configuration, reachable on
// some well-formed input tree, in which the pattern matcher performs an
// error action. The present table generator only notifies the user and
// does not attempt corrective action (§3.2); blocks are repaired by adding
// bridge productions to the grammar (§6.2.2).
type Block struct {
	State  int
	Term   string
	Prefix string // a witness terminal prefix reaching the block
}

func (b Block) String() string {
	return fmt.Sprintf("state %d blocks on %s after %q", b.State, b.Term, b.Prefix)
}

// CheckBlocks searches for syntactic blocks by exploring every parser
// configuration reachable from well-formed prefix tree strings of at most
// maxTokens terminals, visiting at most maxConfigs configurations. The
// arity oracle gives each terminal's operand count; terminals it does not
// know are skipped. It returns the blocks found and whether every
// configuration within the token bound was explored (false only when the
// maxConfigs budget truncated the search). Note that the input set is an
// over-approximation — every arity-valid tree, not only trees a front end
// can produce — so reported blocks are notifications for the grammar
// author to interpret, exactly the behaviour §3.2 describes.
func CheckBlocks(t *Tables, arity func(string) (int, bool), maxTokens, maxConfigs int) ([]Block, bool) {
	type config struct {
		stack  []int32
		need   int // subtrees still required for a complete tree
		tokens int
		prefix string
	}
	arities := make([]int, len(t.Terms))
	usable := make([]bool, len(t.Terms))
	for i, term := range t.Terms {
		if a, ok := arity(term); ok {
			arities[i], usable[i] = a, true
		}
	}
	seen := make(map[string]bool)
	key := func(c *config) string {
		buf := make([]byte, 0, len(c.stack)*4+4)
		for _, s := range c.stack {
			buf = append(buf, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		buf = append(buf, byte(c.need))
		return string(buf)
	}
	var blocks []Block
	blocked := make(map[[2]int]bool)
	complete := true
	work := []*config{{stack: []int32{0}, need: 1}}
	seen[key(work[0])] = true
	for len(work) > 0 {
		if len(seen) > maxConfigs {
			complete = false
			break
		}
		c := work[0]
		work = work[1:]
		tryTerm := func(term int, termName string) {
			stack := append([]int32{}, c.stack...)
			for {
				st := stack[len(stack)-1]
				act := t.Action[st][term]
				switch act.Kind {
				case ActErr:
					k := [2]int{int(st), term}
					if !blocked[k] {
						blocked[k] = true
						blocks = append(blocks, Block{State: int(st), Term: termName, Prefix: c.prefix})
					}
					return
				case ActShift:
					stack = append(stack, act.Arg)
					nc := &config{
						stack:  stack,
						need:   c.need - 1 + arities[term],
						tokens: c.tokens + 1,
						prefix: strings.TrimSpace(c.prefix + " " + termName),
					}
					if k := key(nc); !seen[k] {
						seen[k] = true
						work = append(work, nc)
					}
					return
				case ActAccept:
					return
				case ActReduce, ActChoice:
					p := act.Arg
					if act.Kind == ActChoice {
						p = t.Choices[act.Arg][len(t.Choices[act.Arg])-1] // default candidate
					}
					rhsLen := len(t.Grammar.Prods[p-1].RHS)
					stack = stack[:len(stack)-rhsLen]
					lhs, _ := t.NontermID(t.Grammar.Prods[p-1].LHS)
					to := t.Goto[stack[len(stack)-1]][lhs]
					if to < 0 {
						k := [2]int{int(stack[len(stack)-1]), -1 - lhs}
						if !blocked[k] {
							blocked[k] = true
							blocks = append(blocks, Block{
								State: int(stack[len(stack)-1]),
								Term:  "goto " + t.Nonterms[lhs], Prefix: c.prefix,
							})
						}
						return
					}
					stack = append(stack, to)
				}
			}
		}
		if c.need == 0 {
			tryTerm(t.End(), "$end")
			continue
		}
		if c.tokens >= maxTokens {
			continue
		}
		for term := 0; term < len(t.Terms); term++ {
			if !usable[term] {
				continue
			}
			tryTerm(term, t.Terms[term])
		}
	}
	return blocks, complete
}
