package tablegen

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"ggcg/internal/cgram"
)

func TestPackActionRoundTrip(t *testing.T) {
	for _, a := range []Action{
		{},
		{Kind: ActShift, Arg: 1},
		{Kind: ActReduce, Arg: 1 << 20},
		{Kind: ActAccept},
		{Kind: ActChoice, Arg: 7},
		{Kind: ActErr, Arg: 0},
	} {
		if got := UnpackAction(PackAction(a)); got != a {
			t.Errorf("UnpackAction(PackAction(%+v)) = %+v", a, got)
		}
	}
	if PackAction(Action{}) != 0 {
		t.Error("the zero code must be the error action")
	}
}

// assertPackedEquivalent exhaustively compares the packed tables against
// the dense tables over every (state, symbol) pair — the equivalence the
// packed matcher loop rests on.
func assertPackedEquivalent(t *testing.T, tb *Tables) {
	t.Helper()
	p := tb.Packed()
	if p == nil {
		t.Fatal("Build left no packed tables")
	}
	nStates := len(tb.Action)
	nTermsEnd := len(tb.Terms) + 1 // terminal ids plus the end marker
	for s := 0; s < nStates; s++ {
		for term := 0; term < nTermsEnd; term++ {
			dense := tb.Lookup(s, term)
			packed := p.Lookup(s, term)
			if dense != packed {
				t.Fatalf("action(%d,%d): dense %v/%d packed %v/%d",
					s, term, dense.Kind, dense.Arg, packed.Kind, packed.Arg)
			}
		}
		for nt := 0; nt < len(tb.Nonterms); nt++ {
			dense := tb.GotoState(s, nt)
			packed := int(p.GotoState(int32(s), int32(nt)))
			if dense != packed {
				t.Fatalf("goto(%d,%d): dense %d packed %d", s, nt, dense, packed)
			}
		}
	}
	for i, pr := range tb.Grammar.Prods {
		if int(p.ProdLHS[i+1]) != int(pr.LHSID) {
			t.Fatalf("ProdLHS[%d] = %d, want %d (%s)", i+1, p.ProdLHS[i+1], pr.LHSID, pr.LHS)
		}
	}
}

func TestPackedEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"addr", addrGrammar},
		{"longest", longestGrammar},
		{"tie", tieGrammar},
	} {
		t.Run(tc.name, func(t *testing.T) {
			assertPackedEquivalent(t, build(t, tc.src, Options{}))
		})
	}
}

func TestPackedSize(t *testing.T) {
	tb := build(t, addrGrammar, Options{})
	sz := tb.Size()
	if sz.PackedBytes <= 0 {
		t.Fatalf("PackedBytes = %d", sz.PackedBytes)
	}
	if sz.PackedBytes != tb.Packed().Bytes() {
		t.Errorf("Size().PackedBytes = %d, Packed().Bytes() = %d", sz.PackedBytes, tb.Packed().Bytes())
	}
	if sz.Bytes <= 0 {
		t.Fatalf("Bytes = %d", sz.Bytes)
	}
}

// TestEncodeVersionRejected decodes a stream in the unversioned pre-comb
// wire layout and expects the version error, not a garbled table set.
func TestEncodeVersionRejected(t *testing.T) {
	// The legacy layout shipped the dense matrices and no Version field;
	// any subset of it decodes into wireTables with Version = 0.
	legacy := struct {
		GrammarText string
		Start       string
	}{GrammarText: addrGrammar, Start: "stmt"}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	_, err := Decode(&buf)
	if err == nil {
		t.Fatal("Decode accepted an unversioned legacy stream")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("error does not name the version mismatch: %v", err)
	}
}

// fuzzGrammar derives a small machine-description grammar from fuzz bytes:
// each byte pair picks a left hand side from a tiny nonterminal pool and a
// right hand side template over the toy terminal vocabulary. Many derived
// grammars are rejected by Build (chain loops, unreachable symbols); the
// fuzz target skips those and differentially checks the rest.
func fuzzGrammar(data []byte) *cgram.Grammar {
	if len(data) < 2 {
		return nil
	}
	nts := []string{"s", "a", "b"}
	var prods []*cgram.Prod
	// The start symbol always derives something so Build has a chance.
	prods = append(prods, &cgram.Prod{LHS: "s", RHS: []string{"Op2", "a", "b"}})
	for i := 0; i+1 < len(data) && len(prods) < 24; i += 2 {
		lhs := nts[int(data[i])%len(nts)]
		var rhs []string
		switch int(data[i+1]) % 7 {
		case 0:
			rhs = []string{"Op2", nts[int(data[i+1]/7)%len(nts)], "X"}
		case 1:
			rhs = []string{"Op1", nts[int(data[i+1]/7)%len(nts)]}
		case 2:
			rhs = []string{"X"}
		case 3:
			rhs = []string{"Y"}
		case 4:
			rhs = []string{"Op2", "Y", nts[int(data[i+1]/7)%len(nts)]}
		case 5:
			rhs = []string{nts[int(data[i+1]/7)%len(nts)]} // chain rule
		case 6:
			rhs = []string{"Op1", "Z"}
		}
		prods = append(prods, &cgram.Prod{LHS: lhs, RHS: rhs})
	}
	g, err := cgram.New("s", prods)
	if err != nil {
		return nil
	}
	return g
}

// FuzzPackedEquivalence builds tables for random small grammars and holds
// the packed form to exact lookup equivalence with the dense form.
func FuzzPackedEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 0, 5, 1, 3})
	f.Add([]byte{2, 5, 1, 5, 0, 1, 2, 4, 1, 6, 0, 2})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGrammar(data)
		if g == nil {
			t.Skip()
		}
		tb, err := Build(g, Options{})
		if err != nil {
			t.Skip() // rejected grammar: chain loop, conflicts cap, ...
		}
		assertPackedEquivalent(t, tb)

		// The packed form must also survive the wire format.
		var buf bytes.Buffer
		if err := tb.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		tb2, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		assertPackedEquivalent(t, tb2)
	})
}
