package tablegen

// Comb-vector table compression (the yacc/bison row-displacement scheme the
// instruction-selection literature credits with making table-driven
// selectors production-viable). The dense ACTION matrix is
// states x (terminals+1) and overwhelmingly error or one dominant
// reduction per row; the dense GOTO matrix is states x nonterminals and
// overwhelmingly -1 or one dominant successor per column. Packed stores,
// per row (per column for GOTO), only the entries that differ from the
// row's most frequent entry, overlapped into shared next/check arrays at a
// per-row displacement. Lookup is two array indexes and one comparison —
// no maps, no pointer chasing — and is EXACTLY equivalent to the dense
// lookup, error entries included, because entries that differ from the
// default (error entries among them) are always stored explicitly.

// PackAction encodes an Action as a single int32: the kind in the low
// three bits, the argument in the remaining 29 (state and production
// counts are bounded far below 2^29 by the item encoding). The zero code
// is the error action, so a missing entry decodes to ActErr.
func PackAction(a Action) int32 { return a.Arg<<3 | int32(a.Kind) }

// UnpackAction decodes a packed action code.
func UnpackAction(code int32) Action {
	return Action{Kind: ActionKind(code & 7), Arg: code >> 3}
}

// Packed is the comb-vector form of Tables: flat int32 arrays sized by the
// useful entries rather than the full matrices, built once at Build or
// Decode time and driven by the matcher's hot loop.
type Packed struct {
	NumTerms    int32 // terminal count; the end marker's id is NumTerms
	NumNonterms int32
	NumStates   int32

	// ACTION comb, packed by state row and keyed by terminal id.
	// Lookup(s, t): i := Base[s]+t; if Check[i] == t then Next[i] else
	// Default[s]. Default is the row's most frequent action code, which
	// for the common "reduce on every follow terminal" rows is the
	// default-reduce the issue's yacc lineage calls for.
	Base    []int32 // per state: displacement into Next/Check
	Default []int32 // per state: action code on a check miss
	Next    []int32 // packed action codes
	Check   []int32 // terminal id owning each slot; -1 free

	// GOTO comb, packed by nonterminal column and keyed by state id
	// (columns compress better than rows: each nonterminal has one or two
	// dominant successor states).
	GBase    []int32 // per nonterminal: displacement into GNext/GCheck
	GDefault []int32 // per nonterminal: successor on a check miss; -1 none
	GNext    []int32 // packed successor states
	GCheck   []int32 // state id owning each slot; -1 free

	// ProdLHS maps a production index (1-based, as in reduce actions) to
	// the nonterminal id of its left hand side, so the reduce path
	// resolves its goto without a map lookup. Entry 0 is the augmented
	// rule and unused.
	ProdLHS []int32

	// Choices aliases the dense tables' dynamic-choice lists.
	Choices [][]int32
}

// Lookup returns the action for a state on a terminal id, exactly as the
// dense Tables.Lookup reports it.
func (p *Packed) Lookup(state, term int) Action {
	return UnpackAction(p.LookupCode(int32(state), int32(term)))
}

// LookupCode is the hot-loop form of Lookup: it returns the packed action
// code without materializing an Action.
func (p *Packed) LookupCode(state, term int32) int32 {
	i := p.Base[state] + term
	if uint32(i) < uint32(len(p.Check)) && p.Check[i] == term {
		return p.Next[i]
	}
	return p.Default[state]
}

// GotoState returns the successor of state under a nonterminal id, or -1,
// exactly as the dense Tables.GotoState reports it.
func (p *Packed) GotoState(state, nt int32) int32 {
	i := p.GBase[nt] + state
	if uint32(i) < uint32(len(p.GCheck)) && p.GCheck[i] == state {
		return p.GNext[i]
	}
	return p.GDefault[nt]
}

// Bytes returns the measured byte size of the packed arrays (four bytes
// per int32 element, including the choice lists).
func (p *Packed) Bytes() int {
	n := len(p.Base) + len(p.Default) + len(p.Next) + len(p.Check) +
		len(p.GBase) + len(p.GDefault) + len(p.GNext) + len(p.GCheck) +
		len(p.ProdLHS)
	for _, c := range p.Choices {
		n += len(c)
	}
	return 4 * n
}

// combRow is one row (or transposed column) handed to the comb packer:
// the explicit entries that differ from the row's default.
type combRow struct {
	index int
	keys  []int32 // ascending
	vals  []int32
	def   int32
}

// packComb overlaps rows into shared next/check arrays by first-fit row
// displacement, deduplicating identical rows. width is the key universe
// size (a row with no explicit entries gets base -width, which misses for
// every key). It returns per-row base and default arrays plus the combs.
func packComb(rows []combRow, width int32) (base, def, next, check []int32) {
	base = make([]int32, len(rows))
	def = make([]int32, len(rows))
	for _, r := range rows {
		def[r.index] = r.def
	}

	// Densest rows first: they are the hardest to place, and the sparse
	// rows then fill the holes they leave.
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && len(rows[order[j]].keys) > len(rows[order[j-1]].keys); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	// Rows with identical explicit entries share one set of slots; the
	// per-row default is kept outside the comb, so sharing is independent
	// of it. Distinct rows must get distinct bases: check stores the key,
	// so a key stored by one row would alias into any other row packed at
	// the same displacement.
	shared := make(map[string]int32)
	usedBase := make(map[int32]bool)

	for _, ri := range order {
		r := rows[ri]
		if len(r.keys) == 0 {
			// All-default rows share one base that misses for every key
			// in the universe (it cannot collide with a real base, which
			// is always at least -(width-1)).
			base[r.index] = -width
			continue
		}
		s := rowKey(r)
		if b, ok := shared[s]; ok {
			base[r.index] = b
			continue
		}
		// First-fit: the displacement must keep every slot in range, be
		// unclaimed by any other row, and find every needed slot free.
		d := -r.keys[0]
	search:
		for {
			if usedBase[d] {
				d++
				continue search
			}
			end := d + r.keys[len(r.keys)-1]
			for int(end) >= len(check) {
				next = append(next, 0)
				check = append(check, -1)
			}
			for _, k := range r.keys {
				if check[d+k] != -1 {
					d++
					continue search
				}
			}
			break
		}
		for i, k := range r.keys {
			next[d+k] = r.vals[i]
			check[d+k] = k
		}
		base[r.index] = d
		shared[s] = d
		usedBase[d] = true
	}
	return base, def, next, check
}

// rowKey is a deduplication signature over a row's explicit entries.
func rowKey(r combRow) string {
	buf := make([]byte, 0, 8*len(r.keys))
	for i, k := range r.keys {
		v := r.vals[i]
		buf = append(buf, byte(k), byte(k>>8), byte(k>>16), byte(k>>24),
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// mostFrequent returns the value occurring most often in vals; ties go to
// the smaller value so packing is deterministic.
func mostFrequent(vals []int32) int32 {
	counts := make(map[int32]int, 8)
	for _, v := range vals {
		counts[v]++
	}
	var best int32
	bestN := -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

// Pack builds the comb-vector form of the tables. The result is exactly
// lookup-equivalent to the dense form for every (state, symbol) pair; the
// differential tests and the corpus golden guard hold the two together.
func (t *Tables) Pack() *Packed {
	nT := int32(len(t.Terms))
	nNT := int32(len(t.Nonterms))
	nS := int32(len(t.Action))
	p := &Packed{
		NumTerms:    nT,
		NumNonterms: nNT,
		NumStates:   nS,
		Choices:     t.Choices,
	}

	// ACTION rows: keyed by terminal id (width nT+1 for the end marker).
	arows := make([]combRow, nS)
	codes := make([]int32, nT+1)
	for s := range t.Action {
		for term, a := range t.Action[s] {
			codes[term] = PackAction(a)
		}
		def := mostFrequent(codes)
		r := combRow{index: s, def: def}
		for term, c := range codes {
			if c != def {
				r.keys = append(r.keys, int32(term))
				r.vals = append(r.vals, c)
			}
		}
		arows[s] = r
	}
	p.Base, p.Default, p.Next, p.Check = packComb(arows, nT+1)

	// GOTO columns: keyed by state id.
	gcols := make([]combRow, nNT)
	col := make([]int32, nS)
	for nt := int32(0); nt < nNT; nt++ {
		for s := int32(0); s < nS; s++ {
			col[s] = t.Goto[s][nt]
		}
		def := mostFrequent(col)
		r := combRow{index: int(nt), def: def}
		for s, g := range col {
			if g != def {
				r.keys = append(r.keys, int32(s))
				r.vals = append(r.vals, g)
			}
		}
		gcols[nt] = r
	}
	p.GBase, p.GDefault, p.GNext, p.GCheck = packComb(gcols, nS)

	// Reduce-path goto ids, resolved once here instead of per reduction.
	p.ProdLHS = make([]int32, len(t.Grammar.Prods)+1)
	for i, pr := range t.Grammar.Prods {
		p.ProdLHS[i+1] = int32(t.ntID[pr.LHS])
	}
	return p
}
