module ggcg

go 1.22
