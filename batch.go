package ggcg

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchConfig configures CompileBatch.
type BatchConfig struct {
	// Workers bounds the number of units compiled concurrently; <= 0
	// uses runtime.GOMAXPROCS(0).
	Workers int

	// Config is the per-unit compilation configuration, applied to every
	// unit of the batch. Config.Trace must be nil — the shift/reduce
	// listing is inherently per-unit and would interleave across workers;
	// trace single units with Compile. Config.Observer, if set, receives
	// the merged instrumentation of the whole batch: each worker records
	// into a private shard, folded back once when the pool drains. Every
	// shard gets its own track id, so the observer's span events carry
	// which worker did what — exported through internal/obs/traceexport
	// (ggcc -tracefile), an 8-worker batch renders as eight parallel
	// timeline tracks. Config.Workers additionally parallelizes the
	// functions within each unit.
	Config Config

	// Cache, if non-nil, is the compile-result cache every unit of the
	// batch compiles through (shorthand for setting Config.Cache):
	// duplicate units in the batch compile exactly once — concurrent
	// duplicates coalesce onto one in-flight compile, later ones hit the
	// stored entry — and their outputs stay byte-identical to an
	// uncached run. A cache shared across batches amortizes repeated
	// traffic the same way.
	Cache *Cache
}

// BatchError aggregates the per-unit failures of a batch. Units compile
// independently, so one bad unit does not stop the others.
type BatchError struct {
	// Failed maps the index of each failed source to its error.
	Failed map[int]error
}

func (e *BatchError) Error() string {
	// Report the lowest failed index first, like a sequential run would.
	first := -1
	for i := range e.Failed {
		if first < 0 || i < first {
			first = i
		}
	}
	msg := fmt.Sprintf("ggcg: batch: %d of the units failed; first: unit %d: %v",
		len(e.Failed), first, e.Failed[first])
	return msg
}

// Unwrap exposes the individual unit errors to errors.Is/As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, 0, len(e.Failed))
	for _, err := range e.Failed {
		out = append(out, err)
	}
	return out
}

// CompileBatch compiles many source units concurrently on a bounded
// worker pool. The instruction-selection tables — the static half of the
// system (§3) — are constructed exactly once and shared read-only by
// every worker, so the per-unit cost is only the table-driven walk: the
// amortization argument of the paper, extended across concurrent
// compilations.
//
// Results are returned in input order and each unit's output is
// byte-identical to what a sequential Compile of the same source
// produces. If some units fail, their slots are nil and the returned
// error is a *BatchError collecting every failure; the remaining units
// are still compiled and returned.
//
// Each unit's IR is built in a node arena acquired from a process-wide
// pool and released when the unit's compile returns, so a worker churning
// through units keeps reusing the same warmed slabs; returned Compiled
// values never alias arena memory (see DESIGN.md, "Memory ownership and
// arenas").
func CompileBatch(srcs []string, cfg BatchConfig) ([]*Compiled, error) {
	if cfg.Config.Trace != nil {
		return nil, errors.New("ggcg: BatchConfig.Config.Trace is not supported; trace single units with Compile")
	}
	if cfg.Cache != nil {
		cfg.Config.Cache = cfg.Cache
	}
	out := make([]*Compiled, len(srcs))
	if len(srcs) == 0 {
		return out, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}

	// Build the shared tables up front (outside the timed span of any
	// one unit) so workers never race to construct them and the first
	// unit is not charged for the static half. The span puts the
	// once-per-batch static cost on the main track of a timeline trace,
	// where it would otherwise be invisible.
	parent := cfg.Config.Observer
	if !cfg.Config.Baseline {
		mach, err := resolveTarget(cfg.Config)
		if err != nil {
			return nil, err
		}
		tsp := parent.Start("tables")
		_, err = mach.Tables()
		tsp.End()
		if err != nil {
			return nil, err
		}
	}
	errs := make([]error, len(srcs))
	shards := make([]*Observer, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shard := parent.Shard()
		shards[w] = shard
		wcfg := cfg.Config
		wcfg.Observer = shard
		wg.Add(1)
		go func(wcfg Config) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(srcs) {
					return
				}
				out[i], errs[i] = Compile(srcs[i], wcfg)
			}
		}(wcfg)
	}
	wg.Wait()
	for _, s := range shards {
		parent.Merge(s)
	}

	var failed map[int]error
	for i, err := range errs {
		if err != nil {
			if failed == nil {
				failed = make(map[int]error)
			}
			failed[i] = fmt.Errorf("unit %d: %w", i, err)
		}
	}
	if failed != nil {
		return out, &BatchError{Failed: failed}
	}
	return out, nil
}
